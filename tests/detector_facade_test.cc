// The Detect() facade's two entry points must agree: the ref overload
// (interned PatternRef resolved through a PatternStore) and the value
// overload must produce the same report on every field that is
// deterministic across calls (verdict, method, trees_checked, detail —
// witnesses may differ only in fresh-label ids). Since the store hands the
// detector the *minimized* read, this doubles as an end-to-end check that
// minimization is conflict-preserving. Also covers metric side effects: a
// Detect call bumps the dispatch and verdict counters in the default
// registry.

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "conflict/detector.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "pattern/pattern_store.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

void ExpectSameReport(const Result<ConflictReport>& by_value,
                      const Result<ConflictReport>& by_ref,
                      const std::string& label) {
  ASSERT_EQ(by_value.ok(), by_ref.ok()) << label;
  if (!by_value.ok()) {
    EXPECT_EQ(by_value.status().code(), by_ref.status().code()) << label;
    return;
  }
  EXPECT_EQ(by_value->verdict, by_ref->verdict) << label;
  EXPECT_EQ(by_value->method, by_ref->method) << label;
  EXPECT_EQ(by_value->trees_checked, by_ref->trees_checked) << label;
  EXPECT_EQ(by_value->detail, by_ref->detail) << label;
  EXPECT_EQ(by_value->witness.has_value(), by_ref->witness.has_value())
      << label;
}

TEST(DetectorFacadeTest, RefOverloadMatchesValueOverloadForInserts) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  const Tree x = Xml("<C/>", symbols);
  struct Case {
    const char* read;
    const char* insert;
  };
  for (const Case& c : {Case{"x//C", "x/B"}, Case{"x//D", "x/B"},
                        Case{"a[q]//C", "a/B"}, Case{"a/*/C", "a/B"}}) {
    const Pattern read = Xp(c.read, symbols);
    const Pattern ins = Xp(c.insert, symbols);
    auto content = std::make_shared<const Tree>(CopyTree(x));
    Result<ConflictReport> by_value =
        Detect(read, UpdateOp::MakeInsert(ins, content));
    Result<ConflictReport> by_ref =
        Detect(*store, store->Intern(read),
               UpdateOp::MakeInsert(store, store->Intern(ins), content));
    ExpectSameReport(by_value, by_ref,
                     std::string(c.read) + " vs insert " + c.insert);
  }
}

TEST(DetectorFacadeTest, RefOverloadMatchesValueOverloadForDeletes) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  struct Case {
    const char* read;
    const char* del;
  };
  for (const Case& c : {Case{"a//b", "a//c"}, Case{"a/b", "a/c"},
                        Case{"a[q]//b", "a//c"}, Case{"a/b", "a"}}) {
    const Pattern read = Xp(c.read, symbols);
    const Pattern del = Xp(c.del, symbols);
    Result<UpdateOp> by_value_op = UpdateOp::MakeDelete(del);
    Result<UpdateOp> by_ref_op =
        UpdateOp::MakeDelete(store, store->Intern(del));
    // Root-selecting delete: both factories must reject it (the root check
    // is stable under minimization — a minimized root output is still the
    // root).
    ASSERT_EQ(by_value_op.ok(), by_ref_op.ok()) << c.del;
    if (!by_value_op.ok()) continue;
    Result<ConflictReport> by_value = Detect(read, *by_value_op);
    Result<ConflictReport> by_ref =
        Detect(*store, store->Intern(read), *by_ref_op);
    ExpectSameReport(by_value, by_ref,
                     std::string(c.read) + " vs delete " + c.del);
  }
}

TEST(DetectorFacadeTest, RandomizedSweepAgrees) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  Rng rng(424242);
  PatternGenOptions options;
  options.size = 3;
  options.branch_prob = 0.4;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b"),
                      symbols->Intern("c")};
  RandomPatternGenerator gen(symbols, options);
  DetectorOptions detector_options;
  detector_options.search.max_nodes = 4;

  for (int iter = 0; iter < 30; ++iter) {
    const bool linear_read = iter % 2 == 0;
    const Pattern read =
        linear_read ? gen.GenerateLinear(&rng) : gen.GenerateBranching(&rng);
    const Pattern update = gen.GenerateLinear(&rng);
    Tree x(symbols);
    x.CreateRoot(options.alphabet[rng.NextBounded(3)]);
    auto content = std::make_shared<const Tree>(CopyTree(x));
    UpdateOp op = UpdateOp::MakeInsert(update, content);
    Result<ConflictReport> by_value = Detect(read, op, detector_options);
    Result<ConflictReport> by_ref = Detect(*store, store->Intern(read),
                                           op.Bind(store), detector_options);
    if (linear_read) {
      // Linear patterns are fixpoints of minimization (their only leaf is
      // the output), so the two paths run the identical algorithm.
      ExpectSameReport(by_value, by_ref, "iter " + std::to_string(iter));
      continue;
    }
    // Branching reads may *shrink* under minimization — e.g. to a linear
    // pattern, upgrading the ref path from the budgeted bounded search to
    // the complete PTIME algorithm. The ref verdict may therefore be
    // strictly more precise, but definitive verdicts must never disagree.
    ASSERT_EQ(by_value.ok(), by_ref.ok()) << "iter " << iter;
    if (!by_value.ok()) continue;
    if (by_value->verdict != ConflictVerdict::kUnknown &&
        by_ref->verdict != ConflictVerdict::kUnknown) {
      EXPECT_EQ(by_value->verdict, by_ref->verdict) << "iter " << iter;
    }
  }
}

TEST(DetectorFacadeTest, BindPreservesOpSemantics) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  UpdateOp op = UpdateOp::MakeInsert(
      Xp("a//b", symbols),
      std::make_shared<const Tree>(Xml("<c/>", symbols)));
  UpdateOp bound = op.Bind(store);
  EXPECT_TRUE(bound.pattern_ref().valid());
  EXPECT_EQ(bound.pattern_store(), store.get());
  EXPECT_EQ(bound.kind(), UpdateOp::Kind::kInsert);
  EXPECT_EQ(bound.shared_content().get(), op.shared_content().get());
  // Binding again onto the same store reuses the ref.
  EXPECT_EQ(bound.Bind(store).pattern_ref(), bound.pattern_ref());
  // Unbound ops report no store and an invalid ref.
  EXPECT_EQ(op.pattern_store(), nullptr);
  EXPECT_FALSE(op.pattern_ref().valid());
}

TEST(DetectorFacadeTest, DetectReportsVerdictAndMethodCounters) {
  auto symbols = NewSymbols();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const uint64_t calls_before = reg.GetCounter("detector.calls").value();
  const uint64_t linear_before =
      reg.GetCounter("detector.dispatch.linear").value();
  const uint64_t conflict_before =
      reg.GetCounter("detector.verdict.conflict").value();
  const uint64_t latency_before =
      reg.GetHistogram("detector.latency_us").count();

  Result<ConflictReport> r = Detect(
      Xp("x//C", symbols),
      UpdateOp::MakeInsert(Xp("x/B", symbols),
                           std::make_shared<const Tree>(Xml("<C/>", symbols))));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->verdict, ConflictVerdict::kConflict);

  EXPECT_EQ(reg.GetCounter("detector.calls").value(), calls_before + 1);
  EXPECT_EQ(reg.GetCounter("detector.dispatch.linear").value(),
            linear_before + 1);
  EXPECT_EQ(reg.GetCounter("detector.verdict.conflict").value(),
            conflict_before + 1);
  EXPECT_EQ(reg.GetHistogram("detector.latency_us").count(),
            latency_before + 1);
}

}  // namespace
}  // namespace xmlup
