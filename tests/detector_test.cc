#include "conflict/detector.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

/// Facade helpers: build the UpdateOp inline so each test reads like the
/// old two-entry-point API.
Result<ConflictReport> DetectInsert(const Pattern& read,
                                    const Pattern& insert_pattern,
                                    const Tree& inserted,
                                    const DetectorOptions& options = {}) {
  return Detect(read,
                UpdateOp::MakeInsert(
                    insert_pattern,
                    std::make_shared<const Tree>(CopyTree(inserted))),
                options);
}

Result<ConflictReport> DetectDelete(const Pattern& read,
                                    const Pattern& delete_pattern,
                                    const DetectorOptions& options = {}) {
  XMLUP_ASSIGN_OR_RETURN(UpdateOp update, UpdateOp::MakeDelete(delete_pattern));
  return Detect(read, update, options);
}

class DetectorTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(DetectorTest, VerdictNames) {
  EXPECT_EQ(ConflictVerdictName(ConflictVerdict::kConflict), "conflict");
  EXPECT_EQ(ConflictVerdictName(ConflictVerdict::kNoConflict), "no-conflict");
  EXPECT_EQ(ConflictVerdictName(ConflictVerdict::kUnknown), "unknown");
}

TEST_F(DetectorTest, MethodNames) {
  EXPECT_EQ(DetectorMethodName(DetectorMethod::kLinearPtime), "linear-ptime");
  EXPECT_EQ(DetectorMethodName(DetectorMethod::kMainlineHeuristic),
            "mainline-heuristic");
  EXPECT_EQ(DetectorMethodName(DetectorMethod::kBoundedSearch),
            "bounded-search");
}

TEST_F(DetectorTest, LinearReadUsesPtimePath) {
  Tree x = Xml("<C/>", symbols_);
  Result<ConflictReport> r =
      DetectInsert(Xp("x//C", symbols_), Xp("x/B", symbols_), x);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ConflictVerdict::kConflict);
  EXPECT_EQ(r->trees_checked, 0u);
  EXPECT_EQ(r->method, DetectorMethod::kLinearPtime);
  ASSERT_TRUE(r->witness.has_value());
}

TEST_F(DetectorTest, LinearReadNoConflictIsDefinitive) {
  Tree x = Xml("<C/>", symbols_);
  Result<ConflictReport> r =
      DetectInsert(Xp("x//D", symbols_), Xp("x/B", symbols_), x);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ConflictVerdict::kNoConflict);
}

TEST_F(DetectorTest, BranchingReadFallsBackToSearch) {
  // read a[c] — branching (output at root with a predicate).
  Pattern read(symbols_);
  const PatternNodeId root = read.CreateRoot(symbols_->Intern("a"));
  read.AddChild(root, symbols_->Intern("c"), Axis::kChild);
  read.SetOutput(root);
  Tree x = Xml("<c/>", symbols_);
  DetectorOptions options;
  options.search.max_nodes = 3;
  Result<ConflictReport> r =
      DetectInsert(read, Xp("a", symbols_), x, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ConflictVerdict::kConflict);
  EXPECT_EQ(r->method, DetectorMethod::kBoundedSearch);
  EXPECT_GT(r->trees_checked, 0u);
}

TEST_F(DetectorTest, BranchingReadUnknownWhenBudgetTooSmall) {
  // A conflict-free branching instance whose paper bound exceeds the
  // searched size: the detector must say Unknown, not NoConflict.
  Pattern read(symbols_);
  const PatternNodeId root = read.CreateRoot(symbols_->Intern("a"));
  read.AddChild(root, symbols_->Intern("zz"), Axis::kDescendant);
  read.SetOutput(root);
  Tree x = Xml("<qq/>", symbols_);
  DetectorOptions options;
  options.search.max_nodes = 3;  // paper bound is larger
  Result<ConflictReport> r =
      DetectInsert(read, Xp("a/b", symbols_), x, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ConflictVerdict::kUnknown);
}

TEST_F(DetectorTest, BranchingReadNoConflictWhenPaperBoundCovered) {
  // Tiny patterns: |R|=2, |I|=1 wait — use sizes where the bound fits in
  // the searched space. read = a[zz] (size 2), insert pattern size 2,
  // star length 0 ⇒ bound 4.
  Pattern read(symbols_);
  const PatternNodeId root = read.CreateRoot(symbols_->Intern("a"));
  read.AddChild(root, symbols_->Intern("zz"), Axis::kChild);
  read.SetOutput(root);
  Tree x = Xml("<qq/>", symbols_);
  DetectorOptions options;
  options.search.max_nodes = 4;
  Result<ConflictReport> r =
      DetectInsert(read, Xp("a/b", symbols_), x, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ConflictVerdict::kNoConflict);
}

TEST_F(DetectorTest, TruncatedSearchNeverReportsNoConflict) {
  // Regression (soundness audit): when the enumerator's shape cap stops
  // generation (TreeEnumerator::truncated()) and no witness was found,
  // the verdict must be kUnknown — a partial enumeration proves nothing,
  // even when max_nodes covers the paper bound. Same conflict-free
  // instance as BranchingReadNoConflictWhenPaperBoundCovered, but with a
  // max_trees cap tiny enough to force truncation.
  Pattern read(symbols_);
  const PatternNodeId root = read.CreateRoot(symbols_->Intern("a"));
  read.AddChild(root, symbols_->Intern("zz"), Axis::kChild);
  read.SetOutput(root);
  Tree x = Xml("<qq/>", symbols_);
  DetectorOptions options;
  options.search.max_nodes = 4;  // covers the paper bound of 4
  options.search.max_trees = 3;  // ... but truncates the enumeration
  Result<ConflictReport> r =
      DetectInsert(read, Xp("a/b", symbols_), x, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->method, DetectorMethod::kBoundedSearch);
  EXPECT_EQ(r->verdict, ConflictVerdict::kUnknown);
}

TEST_F(DetectorTest, MainlineHeuristicFindsBranchingConflicts) {
  // read a[q]//b — branching, but its mainline a//b conflicts with the
  // delete, and grafting a q-model satisfies the predicate: the heuristic
  // should answer without entering the exponential search.
  Pattern read = Xp("a[q]//b", symbols_);
  ASSERT_FALSE(read.IsLinear());
  Result<ConflictReport> r =
      DetectDelete(read, Xp("a//c", symbols_));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ConflictVerdict::kConflict);
  EXPECT_EQ(r->method, DetectorMethod::kMainlineHeuristic);
  EXPECT_EQ(r->trees_checked, 0u);
  ASSERT_TRUE(r->witness.has_value());
  EXPECT_TRUE(IsReadDeleteWitness(read, Xp("a//c", symbols_), *r->witness,
                                  ConflictSemantics::kNode));
}

TEST_F(DetectorTest, MainlineHeuristicForInsert) {
  Pattern read = Xp("x[p]//C", symbols_);
  Tree content = Xml("<C/>", symbols_);
  Result<ConflictReport> r =
      DetectInsert(read, Xp("x/B", symbols_), content);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ConflictVerdict::kConflict);
  EXPECT_EQ(r->method, DetectorMethod::kMainlineHeuristic);
  ASSERT_TRUE(r->witness.has_value());
  EXPECT_TRUE(IsReadInsertWitness(read, Xp("x/B", symbols_), content,
                                  *r->witness, ConflictSemantics::kNode));
}

TEST_F(DetectorTest, ReadDeleteDispatch) {
  Result<ConflictReport> conflict =
      DetectDelete(Xp("a//b", symbols_), Xp("a//c", symbols_));
  ASSERT_TRUE(conflict.ok());
  EXPECT_EQ(conflict->verdict, ConflictVerdict::kConflict);
  ASSERT_TRUE(conflict->witness.has_value());
  EXPECT_TRUE(IsReadDeleteWitness(Xp("a//b", symbols_), Xp("a//c", symbols_),
                                  *conflict->witness,
                                  ConflictSemantics::kNode));

  Result<ConflictReport> clean =
      DetectDelete(Xp("a/b", symbols_), Xp("a/c", symbols_));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->verdict, ConflictVerdict::kNoConflict);
}

TEST_F(DetectorTest, ReadDeleteRejectsRootDeletion) {
  EXPECT_FALSE(
      DetectDelete(Xp("a/b", symbols_), Xp("a", symbols_)).ok());
}

TEST_F(DetectorTest, SemanticsFlowThrough) {
  DetectorOptions options;
  options.semantics = ConflictSemantics::kTree;
  Result<ConflictReport> r =
      DetectDelete(Xp("a/b", symbols_), Xp("a/b/c", symbols_), options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ConflictVerdict::kConflict);
  // Node semantics: no conflict for the same pair.
  Result<ConflictReport> node =
      DetectDelete(Xp("a/b", symbols_), Xp("a/b/c", symbols_));
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->verdict, ConflictVerdict::kNoConflict);
}

/// Soundness sweep for the branching-read dispatch (heuristic + bounded
/// search): a Conflict verdict always carries a verifiable witness, and a
/// NoConflict verdict is never contradicted by the exhaustive oracle.
class DetectorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DetectorPropertyTest, BranchingReadDispatchIsSound) {
  auto symbols = NewSymbols();
  Rng rng(80000 + GetParam());
  PatternGenOptions options;
  options.size = 3;
  options.branch_prob = 0.7;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);

  DetectorOptions detector_options;
  detector_options.search.max_nodes = 4;

  for (int iter = 0; iter < 8; ++iter) {
    const Pattern read = gen.GenerateBranching(&rng);
    const Pattern ins = gen.GenerateLinear(&rng);
    Tree x(symbols);
    x.CreateRoot(options.alphabet[rng.NextBounded(2)]);

    Result<ConflictReport> report =
        DetectInsert(read, ins, x, detector_options);
    ASSERT_TRUE(report.ok()) << report.status();
    if (report->verdict == ConflictVerdict::kConflict) {
      ASSERT_TRUE(report->witness.has_value());
      EXPECT_TRUE(IsReadInsertWitness(read, ins, x, *report->witness,
                                      ConflictSemantics::kNode))
          << "seed=" << GetParam() << " iter=" << iter
          << " method=" << DetectorMethodName(report->method);
    } else {
      // The oracle over the same (or smaller) space must agree.
      BoundedSearchOptions search;
      search.max_nodes = 4;
      const BruteForceResult brute = BruteForceReadInsertSearch(
          read, ins, x, ConflictSemantics::kNode, search);
      EXPECT_NE(brute.outcome, SearchOutcome::kWitnessFound)
          << "detector said " << ConflictVerdictName(report->verdict)
          << " but a small witness exists; seed=" << GetParam()
          << " iter=" << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DetectorPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace xmlup
