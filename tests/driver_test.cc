#include "driver/driver.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "conflict/report.h"
#include "driver/workload_spec.h"
#include "engine/engine.h"
#include "gtest/gtest.h"

namespace xmlup {
namespace driver {
namespace {

/// A small mixed workload: closed warmup, closed ramp, open steady state.
/// Sized to finish in well under a second so determinism runs repeat it.
constexpr char kSpecText[] = R"({
  "name": "test-reference",
  "seed": 42,
  "generator": {
    "alphabet_size": 3,
    "tree": {"target_size": 10, "max_depth": 6},
    "pattern": {"size": 4, "wildcard_prob": 0.3, "descendant_prob": 0.4}
  },
  "sessions": {"count": 2, "initial_reads": 2, "initial_updates": 2},
  "phases": [
    {"name": "warmup", "mode": "closed", "workers": 1, "ops": 30},
    {"name": "ramp", "mode": "closed", "workers": 4, "ops": 40,
     "mix": {"insert": 0.4, "delete": 0.4, "edit": 0.2}},
    {"name": "steady", "mode": "open", "workers": 4, "ops": 40,
     "arrival_rate": 100000,
     "mix": {"insert": 0.4, "delete": 0.4, "edit": 0.2}}
  ]
})";

WorkloadSpec Spec(const std::string& text = kSpecText) {
  Result<WorkloadSpec> spec = WorkloadSpec::Parse(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return *spec;
}

DriverReport RunWith(size_t workers_override) {
  WorkloadSpec spec = Spec();
  if (workers_override > 0) {
    for (PhaseSpec& phase : spec.phases) phase.workers = workers_override;
  }
  Engine engine;
  Driver driver(&engine, spec);
  Result<DriverReport> report = driver.Run();
  EXPECT_TRUE(report.ok()) << report.status();
  return *report;
}

void ExpectSameOutcome(const DriverReport& a, const DriverReport& b) {
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (size_t p = 0; p < a.phases.size(); ++p) {
    SCOPED_TRACE(a.phases[p].name);
    EXPECT_EQ(a.phases[p].ops_planned, b.phases[p].ops_planned);
    EXPECT_EQ(a.phases[p].ops_completed, b.phases[p].ops_completed);
    EXPECT_FALSE(a.phases[p].truncated);
    EXPECT_FALSE(b.phases[p].truncated);
    EXPECT_EQ(a.phases[p].verdicts, b.phases[p].verdicts);
    EXPECT_EQ(a.phases[p].merge, b.phases[p].merge);
  }
  EXPECT_EQ(a.total_verdicts, b.total_verdicts);
}

TEST(DriverSpecTest, RoundTripIsIdentity) {
  const WorkloadSpec spec = Spec();
  Result<WorkloadSpec> reparsed = WorkloadSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, spec);
  Result<WorkloadSpec> from_text =
      WorkloadSpec::Parse(WriteJsonPretty(spec.ToJson()));
  ASSERT_TRUE(from_text.ok()) << from_text.status();
  EXPECT_EQ(*from_text, spec);
}

TEST(DriverSpecTest, MalformedSpecsAreRejected) {
  auto fails = [](const std::string& text) {
    return !WorkloadSpec::Parse(text).ok();
  };
  EXPECT_TRUE(fails(""));                          // not JSON
  EXPECT_TRUE(fails("[]"));                        // not an object
  EXPECT_TRUE(fails("{}"));                        // no phases
  EXPECT_TRUE(fails(R"({"phases": []})"));         // empty phases
  EXPECT_TRUE(fails(R"({"phases": 3})"));          // wrong type
  EXPECT_TRUE(fails(R"({"phases": [{}], "sead": 1})"));  // top-level typo
  EXPECT_TRUE(fails(R"({"phases": [{"wrokers": 2}]})"));  // phase typo
  EXPECT_TRUE(fails(R"({"phases": [{"workers": 0}]})"));
  EXPECT_TRUE(fails(R"({"phases": [{"ops": 0}]})"));
  EXPECT_TRUE(fails(R"({"phases": [{"mode": "opne"}]})"));
  // Open-loop without a rate / closed-loop with one.
  EXPECT_TRUE(fails(R"({"phases": [{"mode": "open"}]})"));
  EXPECT_TRUE(
      fails(R"({"phases": [{"mode": "closed", "arrival_rate": 10}]})"));
  // All-zero mix.
  EXPECT_TRUE(fails(
      R"({"phases": [{"mix": {"insert": 0, "delete": 0, "edit": 0}}]})"));
  // Bad nested generator block.
  EXPECT_TRUE(fails(
      R"({"generator": {"pattern": {"size": 0}}, "phases": [{}]})"));
  // Edit mix with zero sessions.
  EXPECT_TRUE(fails(
      R"({"sessions": {"count": 0},
          "phases": [{"mix": {"insert": 0, "delete": 0, "edit": 1}}]})"));

  // And the minimal valid spec parses.
  EXPECT_FALSE(fails(R"({"phases": [{}]})"));
}

/// kSpecText plus a schema block over the generator's a0..a2 alphabet:
/// a2 is unreachable from the pinned root, so a slice of the generated
/// reads is schema-dead and Stage 0 fires during the run.
constexpr char kTypedSpecText[] = R"({
  "name": "typed-test",
  "seed": 42,
  "generator": {
    "alphabet_size": 3,
    "tree": {"target_size": 10, "max_depth": 6},
    "pattern": {"size": 4, "wildcard_prob": 0.3, "descendant_prob": 0.4}
  },
  "dtd": {
    "declarations": ["root a0", "allow a0 : a1", "allow a1 : a1"],
    "pruning": true
  },
  "sessions": {"count": 2, "initial_reads": 2, "initial_updates": 2},
  "phases": [
    {"name": "warmup", "mode": "closed", "workers": 1, "ops": 30},
    {"name": "steady", "mode": "closed", "workers": 4, "ops": 40,
     "mix": {"insert": 0.4, "delete": 0.4, "edit": 0.2}}
  ]
})";

TEST(DriverSpecTest, DtdBlockRoundTripsAndValidates) {
  const WorkloadSpec spec = Spec(kTypedSpecText);
  ASSERT_TRUE(spec.dtd.enabled());
  EXPECT_EQ(spec.dtd.declarations.size(), 3u);
  EXPECT_TRUE(spec.dtd.pruning);
  Result<WorkloadSpec> reparsed = WorkloadSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, spec);

  // The spec-level ablation toggle survives the round trip too.
  WorkloadSpec ablated = spec;
  ablated.dtd.pruning = false;
  Result<WorkloadSpec> reparsed_ablated =
      WorkloadSpec::FromJson(ablated.ToJson());
  ASSERT_TRUE(reparsed_ablated.ok()) << reparsed_ablated.status();
  EXPECT_FALSE(reparsed_ablated->dtd.pruning);
  EXPECT_NE(*reparsed_ablated, spec);

  auto fails = [](const std::string& text) {
    return !WorkloadSpec::Parse(text).ok();
  };
  // Empty declarations (omit the block instead), wrong types, key typos.
  EXPECT_TRUE(fails(
      R"({"dtd": {"declarations": []}, "phases": [{}]})"));
  EXPECT_TRUE(fails(
      R"({"dtd": {"declarations": "root a0"}, "phases": [{}]})"));
  EXPECT_TRUE(fails(
      R"({"dtd": {"declarations": ["root a0"], "prunning": true},
          "phases": [{}]})"));
}

TEST(DriverSpecTest, EngineOptionsForSpecParsesTheSchema) {
  const WorkloadSpec spec = Spec(kTypedSpecText);
  auto symbols = std::make_shared<SymbolTable>();
  Result<EngineOptions> options = EngineOptionsForSpec(spec, symbols);
  ASSERT_TRUE(options.ok()) << options.status();
  ASSERT_NE(options->dtd, nullptr);
  EXPECT_TRUE(options->batch.detector.enable_type_pruning);
  EXPECT_EQ(options->dtd->root_label(), symbols->Intern("a0"));

  // The pruning toggle lands on the detector options.
  WorkloadSpec ablated = spec;
  ablated.dtd.pruning = false;
  Result<EngineOptions> ablated_options =
      EngineOptionsForSpec(ablated, symbols);
  ASSERT_TRUE(ablated_options.ok()) << ablated_options.status();
  EXPECT_FALSE(ablated_options->batch.detector.enable_type_pruning);

  // A spec without a block passes `base` through untouched.
  Result<EngineOptions> plain = EngineOptionsForSpec(Spec(), symbols);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->dtd, nullptr);

  // Malformed declarations fail at parse, with the offending line's error.
  WorkloadSpec bad = spec;
  bad.dtd.declarations = {"frobnicate a0"};
  EXPECT_FALSE(EngineOptionsForSpec(bad, symbols).ok());
}

TEST(DriverTest, TypedSpecPrunesAndStaysDeterministic) {
  auto run = [&](size_t workers) {
    WorkloadSpec spec = Spec(kTypedSpecText);
    for (PhaseSpec& phase : spec.phases) phase.workers = workers;
    auto symbols = std::make_shared<SymbolTable>();
    Result<EngineOptions> options = EngineOptionsForSpec(spec, symbols);
    EXPECT_TRUE(options.ok()) << options.status();
    Engine engine(symbols, std::move(*options));
    Driver driver(&engine, spec);
    Result<DriverReport> report = driver.Run();
    EXPECT_TRUE(report.ok()) << report.status();
    return std::make_pair(*report, engine.batch_stats().type_pruned +
                                       engine.MetricsSnapshot().counters
                                           ["detector.method.type_pruned"]);
  };
  const auto [serial, serial_pruned] = run(1);
  const auto [parallel, parallel_pruned] = run(4);
  ExpectSameOutcome(serial, parallel);
  // a2-labeled reads are schema-dead under the spec's schema, so the run
  // must actually exercise Stage 0 (the counter is process-global and
  // monotone; both runs contribute).
  EXPECT_GT(parallel_pruned, 0u);
  (void)serial_pruned;
}

TEST(DriverTest, SameSeedSameReportAcrossRuns) {
  ExpectSameOutcome(RunWith(0), RunWith(0));
}

TEST(DriverTest, VerdictsEquivalentAtOneAndEightWorkers) {
  // The acceptance bar: per-phase op counts and verdict tallies are a
  // function of (spec, seed) alone — worker count only changes timing.
  ExpectSameOutcome(RunWith(1), RunWith(8));
}

TEST(DriverTest, DifferentSeedsGiveDifferentPlans) {
  WorkloadSpec a = Spec();
  WorkloadSpec b = Spec();
  b.seed = 43;
  Engine engine_a;
  Engine engine_b;
  Result<WorkloadPlan> plan_a = Driver::BuildPlan(a, &engine_a);
  Result<WorkloadPlan> plan_b = Driver::BuildPlan(b, &engine_b);
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  // Detect/edit split depends on the seed's weighted draws.
  bool any_difference = false;
  for (size_t p = 0; p < plan_a->phases.size(); ++p) {
    any_difference = any_difference || plan_a->phases[p].detects.size() !=
                                           plan_b->phases[p].detects.size();
  }
  EXPECT_TRUE(any_difference);
}

TEST(DriverTest, DetectVerdictsMatchBatchOracle) {
  // Pure-detect spec (no edits): every planned pair replayed through the
  // batch matrix engine must tally to exactly the driver's verdicts.
  WorkloadSpec spec = Spec(R"({
    "seed": 7,
    "generator": {"pattern": {"size": 4}, "tree": {"target_size": 8}},
    "phases": [{"name": "only", "workers": 4, "ops": 50,
                "mix": {"insert": 0.5, "delete": 0.5, "edit": 0}}]
  })");

  Engine engine;
  Driver driver(&engine, spec);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->phases.size(), 1u);
  EXPECT_EQ(report->phases[0].ops_completed, 50u);

  // Replay: BuildPlan is deterministic, so a fresh engine sees the same
  // pairs; the batch engine is the independent oracle.
  Engine oracle_engine;
  Result<WorkloadPlan> plan = Driver::BuildPlan(spec, &oracle_engine);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->phases.size(), 1u);
  ASSERT_EQ(plan->phases[0].detects.size(), 50u);

  VerdictTally oracle;
  std::vector<PatternRef> reads;
  std::vector<UpdateOp> updates;
  std::vector<ReadUpdatePair> pairs;
  for (size_t k = 0; k < plan->phases[0].detects.size(); ++k) {
    reads.push_back(plan->phases[0].detects[k].read);
    updates.push_back(plan->phases[0].detects[k].update);
    pairs.push_back({k, k});
  }
  const std::vector<SharedConflictResult> cells =
      oracle_engine.DetectPairs(reads, updates, pairs);
  for (const SharedConflictResult& cell : cells) {
    if (!cell->ok()) {
      ++oracle.errors;
    } else if ((*cell)->verdict == ConflictVerdict::kConflict) {
      ++oracle.conflict;
    } else if ((*cell)->verdict == ConflictVerdict::kNoConflict) {
      ++oracle.no_conflict;
    } else {
      ++oracle.unknown;
    }
  }
  EXPECT_EQ(report->phases[0].verdicts, oracle);
  EXPECT_EQ(oracle.total(), 50u);
}

TEST(DriverTest, ReportCarriesThroughputLatencyAndMetrics) {
  const DriverReport report = RunWith(2);
  for (const PhaseReport& phase : report.phases) {
    SCOPED_TRACE(phase.name);
    EXPECT_EQ(phase.ops_completed, phase.ops_planned);
    EXPECT_GT(phase.wall_seconds, 0.0);
    EXPECT_GT(phase.throughput_ops_per_s, 0.0);
    EXPECT_EQ(phase.latency.count, phase.ops_completed);
    EXPECT_LE(phase.latency.p50_us, phase.latency.p95_us);
    EXPECT_LE(phase.latency.p95_us, phase.latency.p99_us);
    EXPECT_LE(phase.latency.p99_us,
              static_cast<double>(phase.latency.max_us) + 1.0);
    // The per-phase metrics diff shows engine activity (detector calls).
    uint64_t detector_activity = 0;
    for (const auto& [name, value] : phase.metrics_delta.counters) {
      if (value > 0) detector_activity += value;
    }
    EXPECT_GT(detector_activity, 0u);
  }
  // The report serializes to the JSON envelope the bench validator reads.
  const JsonValue json = report.ToJson();
  EXPECT_NE(json.Find("phases"), nullptr);
  EXPECT_EQ(json.Find("phases")->AsArray().size(), report.phases.size());
  EXPECT_NE(json.Find("total_verdicts"), nullptr);
}

/// A kind:"merge" phase: each of the 6 units merges 3 concurrent sessions
/// of 2 ops through the MergeExecutor.
constexpr char kMergeSpecText[] = R"({
  "name": "merge-test",
  "seed": 11,
  "generator": {
    "alphabet_size": 3,
    "tree": {"target_size": 8, "max_depth": 5},
    "pattern": {"size": 3, "wildcard_prob": 0.2, "descendant_prob": 0.3}
  },
  "phases": [
    {"name": "merge", "mode": "closed", "kind": "merge", "workers": 2,
     "ops": 6, "merge": {"sessions": 3, "ops_per_session": 2, "threads": 2}}
  ]
})";

TEST(DriverSpecTest, MergeSpecRoundTripsAndValidates) {
  const WorkloadSpec spec = Spec(kMergeSpecText);
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_EQ(spec.phases[0].kind, PhaseKind::kMerge);
  EXPECT_EQ(spec.phases[0].merge.sessions, 3u);
  EXPECT_EQ(spec.phases[0].merge.ops_per_session, 2u);
  EXPECT_EQ(spec.phases[0].merge.threads, 2u);
  EXPECT_FALSE(spec.phases[0].merge.reject);
  Result<WorkloadSpec> reparsed = WorkloadSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, spec);

  auto fails = [](const std::string& text) {
    return !WorkloadSpec::Parse(text).ok();
  };
  EXPECT_TRUE(fails(R"({"phases": [{"kind": "mrege"}]})"));
  // Merge phases don't draw from a mix; ops phases don't take a merge
  // block.
  EXPECT_TRUE(fails(
      R"({"phases": [{"kind": "merge", "mix": {"insert": 1}}]})"));
  EXPECT_TRUE(fails(
      R"({"phases": [{"merge": {"sessions": 2}}]})"));
  EXPECT_TRUE(fails(
      R"({"phases": [{"kind": "merge", "merge": {"sessions": 0}}]})"));
  EXPECT_TRUE(fails(
      R"({"phases": [{"kind": "merge", "merge": {"ops_per_session": 0}}]})"));
  // A bare merge phase (defaults for the merge block) is valid.
  EXPECT_FALSE(fails(R"({"phases": [{"kind": "merge"}]})"));
}

TEST(DriverTest, MergePhaseRunsDeterministically) {
  // Merge tallies, like verdict tallies, are a function of (spec, seed)
  // alone. The engines cap the certificate search budget: inconclusive
  // pairs then serialize instead of burning the full witness-search
  // bound, which changes nothing about what this test checks.
  auto run = [](size_t workers) {
    WorkloadSpec spec = Spec(kMergeSpecText);
    spec.phases[0].workers = workers;
    EngineOptions options;
    options.batch.detector.search.max_trees = 2'000;
    options.batch.detector.build_witness = false;
    Engine engine(std::make_shared<SymbolTable>(), std::move(options));
    Driver driver(&engine, spec);
    Result<DriverReport> report = driver.Run();
    EXPECT_TRUE(report.ok()) << report.status();
    return *report;
  };
  const DriverReport serial = run(1);
  const DriverReport parallel = run(4);
  ExpectSameOutcome(serial, parallel);

  ASSERT_EQ(serial.phases.size(), 1u);
  const MergeTally& merge = serial.phases[0].merge;
  EXPECT_EQ(serial.phases[0].ops_completed, 6u);
  EXPECT_EQ(merge.errors, 0u);
  EXPECT_EQ(merge.merges, 6u);
  EXPECT_EQ(merge.ops_total, 6u * 3u * 2u);
  // The tally accounting identity the bench validator also enforces.
  EXPECT_EQ(merge.accepted + merge.serialized + merge.rejected,
            merge.ops_total);

  // The merge block reaches the phase's JSON report.
  const JsonValue json = serial.phases[0].ToJson();
  ASSERT_NE(json.Find("merge"), nullptr);
  EXPECT_NE(json.Find("merge")->Find("merges"), nullptr);
}

TEST(DriverTest, OpenLoopOverloadStaysAnchored) {
  // Deliberately overloaded open loop: 150 arrivals scheduled 1µs apart
  // (rate 1e6/s) against a single worker whose per-op service time is
  // orders of magnitude larger. The pacer must keep waits anchored to the
  // phase start — never re-anchoring to "now", never hanging on a
  // negative wait — so the phase completes every op, and each op's
  // latency is measured from its *scheduled* arrival (coordinated-
  // omission-safe): queueing delay accumulates linearly and the mean
  // approaches half the wall time. A drifting pacer would instead report
  // per-op service times, collapsing the mean to wall/ops.
  WorkloadSpec spec = Spec(R"({
    "seed": 5,
    "generator": {"pattern": {"size": 4}, "tree": {"target_size": 8}},
    "phases": [{"name": "overload", "mode": "open", "workers": 1,
                "ops": 150, "arrival_rate": 1000000.0,
                "mix": {"insert": 0.5, "delete": 0.5, "edit": 0}}]
  })");
  Engine engine;
  Driver driver(&engine, spec);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->phases.size(), 1u);
  const PhaseReport& phase = report->phases[0];
  EXPECT_FALSE(phase.truncated);
  EXPECT_EQ(phase.ops_completed, 150u);
  EXPECT_EQ(phase.latency.count, 150u);
  const double wall_us = phase.wall_seconds * 1e6;
  EXPECT_GT(phase.latency.mean_us, 0.2 * wall_us);
  EXPECT_LE(phase.latency.mean_us,
            static_cast<double>(phase.latency.max_us));
}

TEST(DriverTest, MaxDurationTruncatesInsteadOfHanging) {
  WorkloadSpec spec = Spec();
  spec.phases.resize(1);
  spec.phases[0].max_duration_s = 1e-9;  // expires immediately
  Engine engine;
  Driver driver(&engine, spec);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->phases[0].truncated);
  EXPECT_LT(report->phases[0].ops_completed, report->phases[0].ops_planned);
}

}  // namespace
}  // namespace driver
}  // namespace xmlup
