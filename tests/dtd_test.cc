#include "dtd/dtd_conflict.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class DtdTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
  Label L(const char* name) { return symbols_->Intern(name); }
};

TEST_F(DtdTest, UnconstrainedSchemaAcceptsEverything) {
  Dtd dtd(symbols_);
  Tree t = Xml("<a><b><c/></b></a>", symbols_);
  EXPECT_TRUE(dtd.Conforms(t));
}

TEST_F(DtdTest, RootLabelEnforced) {
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("catalog"));
  Tree good = Xml("<catalog/>", symbols_);
  Tree bad = Xml("<book/>", symbols_);
  EXPECT_TRUE(dtd.Conforms(good));
  std::string why;
  EXPECT_FALSE(dtd.Conforms(bad, &why));
  EXPECT_NE(why.find("root"), std::string::npos);
}

TEST_F(DtdTest, SealedParentRejectsUnknownChildren) {
  Dtd dtd(symbols_);
  dtd.Allow(L("book"), L("title"));
  dtd.Allow(L("book"), L("author"));
  EXPECT_TRUE(dtd.Conforms(Xml("<book><title/><author/></book>", symbols_)));
  std::string why;
  EXPECT_FALSE(dtd.Conforms(Xml("<book><price/></book>", symbols_), &why));
  EXPECT_NE(why.find("not allowed"), std::string::npos);
}

TEST_F(DtdTest, SealWithoutAllowMeansLeafOnly) {
  Dtd dtd(symbols_);
  dtd.Seal(L("title"));
  EXPECT_TRUE(dtd.Conforms(Xml("<book><title/></book>", symbols_)));
  EXPECT_FALSE(dtd.Conforms(Xml("<book><title><x/></title></book>",
                                symbols_)));
}

TEST_F(DtdTest, RequiredChildren) {
  Dtd dtd(symbols_);
  dtd.Require(L("book"), L("title"));
  EXPECT_TRUE(dtd.Conforms(Xml("<c><book><title/></book></c>", symbols_)));
  std::string why;
  EXPECT_FALSE(dtd.Conforms(Xml("<c><book><author/></book></c>", symbols_),
                            &why));
  EXPECT_NE(why.find("required"), std::string::npos);
}

TEST_F(DtdTest, ParseDeclarationSyntax) {
  Result<Dtd> dtd = Dtd::Parse(
      "# catalog schema\n"
      "root catalog\n"
      "allow catalog : book\n"
      "allow book : title author publisher stock\n"
      "require book : title\n"
      "seal title\n"
      "\n",
      symbols_);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_TRUE(dtd->Conforms(
      Xml("<catalog><book><title/><author/></book></catalog>", symbols_)));
  // Root label enforced.
  EXPECT_FALSE(dtd->Conforms(Xml("<book/>", symbols_)));
  // book requires a title.
  EXPECT_FALSE(dtd->Conforms(
      Xml("<catalog><book><author/></book></catalog>", symbols_)));
  // catalog only allows book children.
  EXPECT_FALSE(dtd->Conforms(Xml("<catalog><press/></catalog>", symbols_)));
  // title is sealed (leaf only).
  EXPECT_FALSE(dtd->Conforms(
      Xml("<catalog><book><title><x/></title></book></catalog>", symbols_)));
}

TEST_F(DtdTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Dtd::Parse("root a b", symbols_).ok());
  EXPECT_FALSE(Dtd::Parse("frobnicate x", symbols_).ok());
  EXPECT_FALSE(Dtd::Parse("allow onlyparent", symbols_).ok());
  EXPECT_FALSE(Dtd::Parse("seal", symbols_).ok());
  // Comments and blank lines are fine.
  EXPECT_TRUE(Dtd::Parse("# nothing\n\n", symbols_).ok());
}

TEST_F(DtdTest, ValidateRejectsSealedLabelWithForbiddenRequiredChild) {
  // Sealed leaf that requires a child: no node of this label can conform,
  // and every type footprint computed under the schema would silently be
  // empty — Validate must surface the contradiction instead.
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("r"));
  dtd.Seal(L("t"));
  dtd.Require(L("t"), L("c"));
  const Status status = dtd.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("self-contradictory"), std::string::npos);

  // Allow-listing the required child resolves it.
  dtd.Allow(L("t"), L("c"));
  EXPECT_TRUE(dtd.Validate().ok());
}

TEST_F(DtdTest, ValidateAcceptsUnsealedRequire) {
  // An unsealed parent accepts any children, so a require alone is
  // satisfiable.
  Dtd dtd(symbols_);
  dtd.Require(L("book"), L("title"));
  EXPECT_TRUE(dtd.Validate().ok());
}

TEST_F(DtdTest, ParseValidatesAutomatically) {
  EXPECT_FALSE(Dtd::Parse(
                   "root r\n"
                   "allow r : t\n"
                   "seal t\n"
                   "require t : c\n",
                   symbols_)
                   .ok());
  // Same shape with the child allowed parses fine.
  EXPECT_TRUE(Dtd::Parse(
                  "root r\n"
                  "allow r : t\n"
                  "allow t : c\n"
                  "require t : c\n",
                  symbols_)
                  .ok());
}

TEST_F(DtdTest, MentionedLabels) {
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("r"));
  dtd.Allow(L("a"), L("b"));
  dtd.Require(L("c"), L("d"));
  const std::set<Label> labels = dtd.MentionedLabels();
  EXPECT_EQ(labels.size(), 5u);
}

TEST_F(DtdTest, SchemaCanRuleOutConflict) {
  // In general, read a/b/c conflicts with insert X=<c/> at a/b. Under a
  // schema where b may only contain d children, no conforming witness
  // exists: the insertion itself would break conformance — but more to
  // the point, the searched space of *conforming* trees has no witness
  // where the read changes.
  const Pattern read = Xp("a/b/q", symbols_);
  const Pattern ins = Xp("a/b", symbols_);
  Tree x = Xml("<q/>", symbols_);

  BoundedSearchOptions options;
  options.max_nodes = 4;

  // Without schema: conflict found.
  const BruteForceResult unrestricted = BruteForceReadInsertSearch(
      read, ins, x, ConflictSemantics::kNode, options);
  EXPECT_EQ(unrestricted.outcome, SearchOutcome::kWitnessFound);

  // With a schema that forbids b under a entirely, the insert can never
  // fire on a conforming document.
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("a"));
  dtd.Allow(L("a"), L("d"));  // a children: only d
  const BruteForceResult restricted = FindReadInsertConflictUnderDtd(
      read, ins, x, dtd, ConflictSemantics::kNode, options);
  EXPECT_EQ(restricted.outcome, SearchOutcome::kExhaustedNoWitness);
}

TEST_F(DtdTest, ConformingWitnessFound) {
  const Pattern read = Xp("a//q", symbols_);
  const Pattern ins = Xp("a/b", symbols_);
  Tree x = Xml("<q/>", symbols_);
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("a"));
  BoundedSearchOptions options;
  options.max_nodes = 3;
  const BruteForceResult r = FindReadInsertConflictUnderDtd(
      read, ins, x, dtd, ConflictSemantics::kNode, options);
  ASSERT_EQ(r.outcome, SearchOutcome::kWitnessFound);
  EXPECT_TRUE(dtd.Conforms(*r.witness));
}

TEST_F(DtdTest, ReadDeleteUnderDtd) {
  const Pattern read = Xp("a//m", symbols_);
  const Pattern del = Xp("a/b", symbols_);
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("a"));
  dtd.Allow(L("a"), L("z"));  // no b children allowed: delete never fires
  BoundedSearchOptions options;
  options.max_nodes = 4;
  const BruteForceResult r = FindReadDeleteConflictUnderDtd(
      read, del, dtd, ConflictSemantics::kNode, options);
  EXPECT_EQ(r.outcome, SearchOutcome::kExhaustedNoWitness);
}

}  // namespace
}  // namespace xmlup
