#include "eval/embedding_enumerator.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class EmbeddingTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(EmbeddingTest, SingleEmbedding) {
  Tree t = Xml("<a><b/></a>", symbols_);
  Pattern p = Xp("a/b", symbols_);
  const std::vector<Embedding> all = EnumerateEmbeddings(p, t, 100);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(IsValidEmbedding(p, t, all[0]));
  EXPECT_EQ(all[0][p.root()], t.root());
}

TEST_F(EmbeddingTest, CountsEmbeddingsNotResults) {
  // Two b children: a//b has two embeddings; a[b] has two as well even
  // though the result set is a single node.
  Tree t = Xml("<a><b/><b/></a>", symbols_);
  EXPECT_EQ(EnumerateEmbeddings(Xp("a//b", symbols_), t, 100).size(), 2u);
  EXPECT_EQ(EnumerateEmbeddings(Xp("a[b]", symbols_), t, 100).size(), 2u);
}

TEST_F(EmbeddingTest, NoEmbeddings) {
  Tree t = Xml("<a/>", symbols_);
  EXPECT_TRUE(EnumerateEmbeddings(Xp("a/b", symbols_), t, 100).empty());
  EXPECT_TRUE(EnumerateEmbeddings(Xp("c", symbols_), t, 100).empty());
}

TEST_F(EmbeddingTest, LimitTruncates) {
  Tree t = Xml("<a><b/><b/><b/><b/></a>", symbols_);
  bool truncated = false;
  const std::vector<Embedding> some =
      EnumerateEmbeddings(Xp("a//b", symbols_), t, 2, &truncated);
  EXPECT_EQ(some.size(), 2u);
  EXPECT_TRUE(truncated);
}

TEST_F(EmbeddingTest, FindEmbeddingSelectingSpecificNode) {
  Tree t = Xml("<a><b/><b><c/></b></a>", symbols_);
  Pattern p = Xp("a//b", symbols_);
  const std::vector<NodeId> kids = t.Children(t.root());
  for (NodeId target : kids) {
    const Embedding e = FindEmbeddingSelecting(p, t, target);
    ASSERT_FALSE(e.empty());
    EXPECT_EQ(e[p.output()], target);
    EXPECT_TRUE(IsValidEmbedding(p, t, e));
  }
  // The c node is not labeled b: no embedding selects it.
  const NodeId c = t.first_child(kids[1]);
  EXPECT_TRUE(FindEmbeddingSelecting(p, t, c).empty());
}

TEST_F(EmbeddingTest, ValidEmbeddingChecker) {
  Tree t = Xml("<a><b><c/></b></a>", symbols_);
  Pattern p = Xp("a//c", symbols_);
  const std::vector<Embedding> all = EnumerateEmbeddings(p, t, 10);
  ASSERT_EQ(all.size(), 1u);
  Embedding good = all[0];
  EXPECT_TRUE(IsValidEmbedding(p, t, good));

  Embedding wrong_root = good;
  wrong_root[p.root()] = t.first_child(t.root());
  EXPECT_FALSE(IsValidEmbedding(p, t, wrong_root));

  Embedding wrong_size = good;
  wrong_size.pop_back();
  EXPECT_FALSE(IsValidEmbedding(p, t, wrong_size));

  // Label violation: map the c pattern node onto the b tree node.
  Embedding wrong_label = good;
  wrong_label[p.output()] = t.first_child(t.root());
  EXPECT_FALSE(IsValidEmbedding(p, t, wrong_label));
}

TEST_F(EmbeddingTest, ChildEdgeValidation) {
  Tree t = Xml("<a><b><c/></b></a>", symbols_);
  Pattern p = Xp("a/c", symbols_);  // c must be a *child* of the root
  EXPECT_TRUE(EnumerateEmbeddings(p, t, 10).empty());
}

TEST_F(EmbeddingTest, BranchingPatternEmbeddings) {
  Tree t = Xml("<a><b/><c/></a>", symbols_);
  Pattern p = Xp("a[b][c]", symbols_);
  const std::vector<Embedding> all = EnumerateEmbeddings(p, t, 10);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(IsValidEmbedding(p, t, all[0]));
}

}  // namespace
}  // namespace xmlup
