#include "engine/engine.h"

#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "conflict/detector.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace xmlup {
namespace {

using testing_util::Xml;
using testing_util::Xp;

class EngineTest : public ::testing::Test {
 protected:
  Engine engine_;

  Pattern P(std::string_view xpath) { return Xp(xpath, engine_.symbols()); }
  std::shared_ptr<const Tree> Content(std::string_view xml) {
    return std::make_shared<const Tree>(Xml(xml, engine_.symbols()));
  }
};

TEST_F(EngineTest, InternDeduplicatesEquivalentPatterns) {
  const PatternRef a = engine_.Intern(P("a/b"));
  const PatternRef b = engine_.Intern(P("a/b"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, engine_.Intern(P("a/c")));
  EXPECT_EQ(engine_.pattern(a).size(), 2u);
}

TEST_F(EngineTest, InternXPathParsesAgainstEngineSymbols) {
  Result<PatternRef> ref = engine_.InternXPath("book[.//quantity]");
  ASSERT_TRUE(ref.ok()) << ref.status();
  EXPECT_EQ(*ref, engine_.Intern(P("book[.//quantity]")));
  EXPECT_FALSE(engine_.InternXPath("a[").ok());
}

TEST_F(EngineTest, DetectMatchesFreeDetectorOnBothOverloads) {
  const Pattern read = P("a/b");
  const UpdateOp update = *UpdateOp::MakeDelete(P("a/b"));

  Result<ConflictReport> via_free = Detect(read, update);
  Result<ConflictReport> via_pattern = engine_.Detect(read, update);
  Result<ConflictReport> via_ref =
      engine_.Detect(engine_.Intern(read), engine_.Bind(update));
  ASSERT_TRUE(via_free.ok());
  ASSERT_TRUE(via_pattern.ok());
  ASSERT_TRUE(via_ref.ok());
  EXPECT_EQ(via_pattern->verdict, via_free->verdict);
  EXPECT_EQ(via_ref->verdict, via_free->verdict);
  EXPECT_EQ(via_ref->verdict, ConflictVerdict::kConflict);

  // A non-overlapping pair is a no-conflict on every path.
  const UpdateOp other = *UpdateOp::MakeDelete(P("c/d"));
  EXPECT_EQ(engine_.Detect(engine_.Intern(read), engine_.Bind(other))->verdict,
            ConflictVerdict::kNoConflict);
}

TEST_F(EngineTest, DetectMatrixMatchesSingletonDetects) {
  const std::vector<Pattern> reads = {P("a/b"), P("a//c")};
  const std::vector<UpdateOp> updates = {
      UpdateOp::MakeInsert(P("a"), Content("<b/>")),
      *UpdateOp::MakeDelete(P("a/b"))};
  const std::vector<SharedConflictResult> matrix =
      engine_.DetectMatrix(reads, updates);
  ASSERT_EQ(matrix.size(), 4u);
  for (size_t i = 0; i < reads.size(); ++i) {
    for (size_t j = 0; j < updates.size(); ++j) {
      const SharedConflictResult& cell = matrix[i * updates.size() + j];
      ASSERT_TRUE(cell->ok());
      Result<ConflictReport> singleton = engine_.Detect(reads[i], updates[j]);
      ASSERT_TRUE(singleton.ok());
      EXPECT_EQ((*cell)->verdict, singleton->verdict) << i << "," << j;
    }
  }
}

TEST_F(EngineTest, CertifyCommuteAgreesWithFreeFunction) {
  const UpdateOp a = UpdateOp::MakeInsert(P("a"), Content("<x/>"));
  const UpdateOp b = *UpdateOp::MakeDelete(P("b/c"));
  Result<IndependenceReport> via_engine = engine_.CertifyCommute(a, b);
  Result<IndependenceReport> via_free = CertifyUpdatesCommute(a, b);
  ASSERT_TRUE(via_engine.ok());
  ASSERT_TRUE(via_free.ok());
  EXPECT_EQ(via_engine->certificate, via_free->certificate);
}

TEST_F(EngineTest, SessionsShareTheEngineStore) {
  std::unique_ptr<Engine::Session> session = engine_.MakeSession();
  EXPECT_EQ(session->matrix().engine().pattern_store(), engine_.store());

  session->matrix().Assign({P("a/b")}, {*UpdateOp::MakeDelete(P("a/b"))});
  EXPECT_EQ(session->matrix().cell(0, 0)->value().verdict,
            ConflictVerdict::kConflict);
  // An edit recomputes one slice, visible through row().
  session->matrix().ReplaceRead(0, P("x/y"));
  EXPECT_EQ(session->matrix().row(0)[0]->value().verdict,
            ConflictVerdict::kNoConflict);
}

TEST_F(EngineTest, DistinctSessionsAreIndependentWriters) {
  std::unique_ptr<Engine::Session> s1 = engine_.MakeSession();
  std::unique_ptr<Engine::Session> s2 = engine_.MakeSession();
  s1->matrix().Assign({P("a/b")}, {*UpdateOp::MakeDelete(P("a/b"))});
  s2->matrix().Assign({P("a/b"), P("c")}, {*UpdateOp::MakeDelete(P("c/d"))});
  EXPECT_EQ(s1->matrix().num_reads(), 1u);
  EXPECT_EQ(s2->matrix().num_reads(), 2u);
  s1->matrix().RemoveRead(0);
  EXPECT_EQ(s1->matrix().num_reads(), 0u);
  EXPECT_EQ(s2->matrix().num_reads(), 2u);
}

TEST_F(EngineTest, LintRunsUnderEngineConfiguration) {
  Program program;
  program.AddRead("y", "x", P("a/b"));
  program.AddRead("y", "x", P("a/b"));  // dead read
  const LintResult result = engine_.Lint(program);
  bool saw_dead_read = false;
  for (const auto& diagnostic : result.diagnostics) {
    saw_dead_read =
        saw_dead_read || diagnostic.rule == LintRule::kDeadRead;
  }
  EXPECT_TRUE(saw_dead_read);

  Engine::LintRunOptions no_partition;
  no_partition.partition = false;
  const LintResult unpartitioned = engine_.Lint(program, no_partition);
  for (const auto& diagnostic : unpartitioned.diagnostics) {
    EXPECT_NE(diagnostic.rule, LintRule::kParallelPartition);
  }
}

TEST_F(EngineTest, AnalyzeDependencesFindsConflictingPair) {
  Program program;
  program.AddRead("y", "x", P("a/b"));
  program.AddDelete("x", P("a/b"));
  const DependenceAnalysisResult result = engine_.AnalyzeDependences(program);
  EXPECT_EQ(result.pairs_total, 1u);
  ASSERT_EQ(result.dependences.size(), 1u);
}

TEST_F(EngineTest, SharedSymbolTableAcrossEngines) {
  auto symbols = std::make_shared<SymbolTable>();
  EngineOptions tree_semantics;
  tree_semantics.batch.detector.semantics = ConflictSemantics::kTree;
  Engine a(symbols, tree_semantics);
  Engine b(symbols, EngineOptions{});
  EXPECT_EQ(a.symbols(), b.symbols());
  // Distinct engines, distinct stores: each owns its configuration.
  EXPECT_NE(a.store(), b.store());
  const Pattern p = Xp("a/b", symbols);
  EXPECT_EQ(a.pattern(a.Intern(p)).size(), b.pattern(b.Intern(p)).size());
}

TEST_F(EngineTest, ConcurrentDetectCallsAreSafe) {
  // The facade's documented hot path: many threads calling Detect against
  // the shared store concurrently (each worker also interns).
  const PatternRef read = engine_.Intern(P("a/b"));
  const UpdateOp del = engine_.Bind(*UpdateOp::MakeDelete(P("a/b")));
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::vector<int> conflicts(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        Result<ConflictReport> r = engine_.Detect(read, del);
        if (r.ok() && r->verdict == ConflictVerdict::kConflict) {
          ++conflicts[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(conflicts[t], kOpsPerThread);
}

TEST_F(EngineTest, BatchStatsAndMetricsAreReachable) {
  engine_.DetectMatrix({P("a/b")}, std::vector<UpdateOp>{
                                       *UpdateOp::MakeDelete(P("a/b"))});
  EXPECT_GE(engine_.batch_stats().pairs_total, 1u);
  const obs::MetricsSnapshot snapshot = engine_.MetricsSnapshot();
  EXPECT_FALSE(snapshot.counters.empty());
}

using EngineDeathTest = EngineTest;

TEST_F(EngineDeathTest, SerializedEntryPointsRejectPoolWorkerReentrancy) {
  // Calling a serialized entry point from inside a ThreadPool worker can
  // deadlock the pool (the call blocks the worker on work only workers
  // can drain), so the facade CHECK-fails instead of hanging. The death
  // test pins the crash-with-message behavior; "threadsafe" style because
  // the statement spawns threads.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::vector<Pattern> reads = {P("a/b")};
  const std::vector<UpdateOp> updates = {*UpdateOp::MakeDelete(P("a/b"))};
  EXPECT_DEATH(
      {
        ThreadPool pool(2);  // >= 2: inline mode has no workers
        pool.Submit([&] { engine_.DetectMatrix(reads, updates); });
        pool.Wait();
      },
      "called from inside a ThreadPool worker");
  // The same call from a non-worker thread (this one) stays legal.
  EXPECT_EQ(engine_.DetectMatrix(reads, updates).size(), 1u);
}

}  // namespace
}  // namespace xmlup
