#include "eval/evaluator.h"

#include <algorithm>
#include <set>

#include "common/random.h"
#include "eval/embedding_enumerator.h"
#include "eval/fast_evaluator.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "workload/tree_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class EvaluatorTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(EvaluatorTest, RootOnlyPattern) {
  Tree t = Xml("<a><b/></a>", symbols_);
  EXPECT_EQ(Evaluate(Xp("a", symbols_), t), std::vector<NodeId>{t.root()});
  EXPECT_TRUE(Evaluate(Xp("x", symbols_), t).empty());
  EXPECT_EQ(Evaluate(Xp("*", symbols_), t), std::vector<NodeId>{t.root()});
}

TEST_F(EvaluatorTest, ChildAxis) {
  Tree t = Xml("<a><b/><b><b/></b><c/></a>", symbols_);
  const std::vector<NodeId> result = Evaluate(Xp("a/b", symbols_), t);
  EXPECT_EQ(result.size(), 2u);  // only direct b children
}

TEST_F(EvaluatorTest, DescendantAxis) {
  Tree t = Xml("<a><b/><b><b/></b><c><b/></c></a>", symbols_);
  EXPECT_EQ(Evaluate(Xp("a//b", symbols_), t).size(), 4u);
}

TEST_F(EvaluatorTest, DescendantIsProper) {
  // a//a must not select the root itself (DESC is proper descendants).
  Tree t = Xml("<a><a/></a>", symbols_);
  const std::vector<NodeId> result = Evaluate(Xp("a//a", symbols_), t);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_NE(result[0], t.root());
}

TEST_F(EvaluatorTest, WildcardMatchesAnyLabel) {
  Tree t = Xml("<a><b/><c/></a>", symbols_);
  EXPECT_EQ(Evaluate(Xp("a/*", symbols_), t).size(), 2u);
  EXPECT_EQ(Evaluate(Xp("*//*", symbols_), t).size(), 2u);
}

TEST_F(EvaluatorTest, PredicateFiltersResults) {
  Tree t = Xml("<r><book><quantity/></book><book/></r>", symbols_);
  EXPECT_EQ(Evaluate(Xp("r/book", symbols_), t).size(), 2u);
  EXPECT_EQ(Evaluate(Xp("r/book[quantity]", symbols_), t).size(), 1u);
}

TEST_F(EvaluatorTest, DescendantPredicate) {
  Tree t = Xml("<r><b><s><q/></s></b><b><s/></b></r>", symbols_);
  EXPECT_EQ(Evaluate(Xp("r/b[.//q]", symbols_), t).size(), 1u);
  EXPECT_EQ(Evaluate(Xp("r/b[q]", symbols_), t).size(), 0u);  // q not a child
}

TEST_F(EvaluatorTest, OutputCanBeInternalNode) {
  // Output in the middle of the trunk: a/b[c] selects b nodes having c.
  Tree t = Xml("<a><b><c/></b><b/></a>", symbols_);
  const std::vector<NodeId> result = Evaluate(Xp("a/b[c]", symbols_), t);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(t.LabelName(result[0]), "b");
}

TEST_F(EvaluatorTest, MultiplePredicatesConjoin) {
  Tree t = Xml("<a><b><c/><d/></b><b><c/></b></a>", symbols_);
  EXPECT_EQ(Evaluate(Xp("a/b[c][d]", symbols_), t).size(), 1u);
}

TEST_F(EvaluatorTest, Figure1Scenario) {
  // The paper's Figure 1/§1: books whose quantity is low.
  Tree t = Xml(
      "<catalog>"
      "<book><title/><stock><quantity><low/></quantity></stock></book>"
      "<book><title/><stock><quantity><high/></quantity></stock></book>"
      "</catalog>",
      symbols_);
  const std::vector<NodeId> low_books =
      Evaluate(Xp("catalog/book[.//low]", symbols_), t);
  ASSERT_EQ(low_books.size(), 1u);
  EXPECT_EQ(t.LabelName(low_books[0]), "book");
}

TEST_F(EvaluatorTest, EmbeddingsNeedNotBeInjective) {
  // Two predicate branches may map onto the same tree path.
  Tree t = Xml("<a><b><c/></b></a>", symbols_);
  EXPECT_EQ(Evaluate(Xp("a[b][b/c]", symbols_), t).size(), 1u);
}

TEST_F(EvaluatorTest, EvaluationAfterMutationSeesCurrentTree) {
  Tree t = Xml("<a><b/></a>", symbols_);
  Pattern p = Xp("a//c", symbols_);
  EXPECT_TRUE(Evaluate(p, t).empty());
  const NodeId b = t.first_child(t.root());
  t.AddChild(b, symbols_->Intern("c"));
  EXPECT_EQ(Evaluate(p, t).size(), 1u);
  t.DeleteSubtree(b);
  EXPECT_TRUE(Evaluate(p, t).empty());
}

TEST_F(EvaluatorTest, EmbedsAtAnchorsAtGivenNode) {
  Tree t = Xml("<r><x><a><b/></a></x></r>", symbols_);
  Pattern p = Xp("a/b", symbols_);
  EXPECT_FALSE(HasEmbedding(p, t));  // root is r, not a
  const NodeId x = t.first_child(t.root());
  const NodeId a = t.first_child(x);
  EXPECT_TRUE(EmbedsAt(p, t, a));
  EXPECT_FALSE(EmbedsAt(p, t, x));
  EXPECT_TRUE(EmbedsAnywhereIn(p, t, t.root()));
  EXPECT_TRUE(EmbedsAnywhereIn(p, t, x));
  const NodeId b = t.first_child(a);
  EXPECT_FALSE(EmbedsAnywhereIn(p, t, b));
}

TEST_F(EvaluatorTest, CountEmbeddingsHandCases) {
  Tree t = Xml("<a><b/><b/></a>", symbols_);
  EXPECT_EQ(CountEmbeddings(Xp("a", symbols_), t), 1u);
  EXPECT_EQ(CountEmbeddings(Xp("a/b", symbols_), t), 2u);
  EXPECT_EQ(CountEmbeddings(Xp("a[b]", symbols_), t), 2u);
  EXPECT_EQ(CountEmbeddings(Xp("a[b][b]", symbols_), t), 4u);
  EXPECT_EQ(CountEmbeddings(Xp("a/c", symbols_), t), 0u);
}

TEST_F(EvaluatorTest, CountEmbeddingsDescendant) {
  Tree t = Xml("<a><b><b/></b></a>", symbols_);
  EXPECT_EQ(CountEmbeddings(Xp("a//b", symbols_), t), 2u);
  EXPECT_EQ(CountEmbeddings(Xp("a//b//b", symbols_), t), 1u);
  EXPECT_EQ(CountEmbeddings(Xp("a//*", symbols_), t), 2u);
}

TEST_F(EvaluatorTest, CountEmbeddingsLargeWithoutOverflowIssues) {
  // A bushy tree where a[*][*][*] has fanout^3 embeddings.
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(symbols_->Intern("a"));
  for (int i = 0; i < 100; ++i) t.AddChild(root, symbols_->Intern("b"));
  EXPECT_EQ(CountEmbeddings(Xp("a[*][*][*]", symbols_), t), 1000000u);
}

/// Property sweep: the polynomial evaluator agrees with explicit embedding
/// enumeration on random (tree, pattern) pairs.
class EvaluatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorPropertyTest, MatchesEmbeddingEnumeration) {
  auto symbols = NewSymbols();
  Rng rng(1000 + GetParam());

  TreeGenOptions tree_options;
  tree_options.target_size = 18;
  tree_options.alphabet = RandomTreeGenerator::MakeAlphabet(symbols.get(), 3);
  RandomTreeGenerator trees(symbols, tree_options);

  PatternGenOptions pat_options;
  pat_options.size = 4;
  pat_options.alphabet = tree_options.alphabet;
  RandomPatternGenerator patterns(symbols, pat_options);

  for (int iter = 0; iter < 20; ++iter) {
    const Tree t = trees.Generate(&rng);
    const Pattern p = rng.NextBool(0.5) ? patterns.GenerateLinear(&rng)
                                        : patterns.GenerateBranching(&rng);
    const std::vector<NodeId> fast = Evaluate(p, t);

    bool truncated = false;
    const std::vector<Embedding> embeddings =
        EnumerateEmbeddings(p, t, 200000, &truncated);
    ASSERT_FALSE(truncated);
    std::set<NodeId> slow;
    for (const Embedding& e : embeddings) {
      EXPECT_TRUE(IsValidEmbedding(p, t, e));
      slow.insert(e[p.output()]);
    }
    EXPECT_EQ(std::set<NodeId>(fast.begin(), fast.end()), slow)
        << "seed=" << GetParam() << " iter=" << iter;
    // The counting DP agrees with explicit enumeration.
    EXPECT_EQ(CountEmbeddings(p, t), embeddings.size())
        << "seed=" << GetParam() << " iter=" << iter;
    // The bit-parallel evaluator agrees with the baseline.
    EXPECT_EQ(EvaluateFast(p, t), fast)
        << "seed=" << GetParam() << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvaluatorPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace xmlup
