// Reconstructions of the paper's Figures 1-8 as executable scenarios.
// Each test builds the figure's trees/patterns and checks the property the
// figure illustrates.

#include "conflict/containment.h"
#include "conflict/read_delete.h"
#include "conflict/read_insert.h"
#include "conflict/reductions.h"
#include "conflict/reparent.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "pattern/pattern_ops.h"
#include "tests/test_util.h"
#include "xml/isomorphism.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class FiguresTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(FiguresTest, Figure1RestockInsertion) {
  // Figure 1 / §1: the catalog document and
  //   insert t/book[.//quantity-low], <restock/>.
  Tree t = Xml(
      "<catalog>"
      "  <book><title/><quantity><low/></quantity></book>"
      "  <book><title/><quantity><high/></quantity></book>"
      "  <book><quantity><low/></quantity></book>"
      "</catalog>",
      symbols_);
  const Pattern condition = Xp("catalog/book[.//low]", symbols_);
  const std::vector<NodeId> points = Evaluate(condition, t);
  ASSERT_EQ(points.size(), 2u);
  Tree restock = Xml("<restock/>", symbols_);
  for (NodeId p : points) t.GraftCopy(p, restock, restock.root());
  EXPECT_EQ(Evaluate(Xp("catalog/book/restock", symbols_), t).size(), 2u);
  EXPECT_EQ(Evaluate(Xp("catalog/book[.//high]/restock", symbols_), t).size(),
            0u);
}

TEST_F(FiguresTest, Figure2EmbeddingExample) {
  // Figure 2: pattern a[.//c]/b[d][*//f] embeds into its model; the
  // evaluation selects the b node.
  const Pattern p = Xp("a[.//c]/b[d][*//f]", symbols_);
  Tree t = Xml("<a><x><c/></x><b><d/><e><g><f/></g></e></b></a>", symbols_);
  const std::vector<NodeId> result = Evaluate(p, t);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(t.LabelName(result[0]), "b");
}

TEST_F(FiguresTest, Figure3ReferenceVsValueConflict) {
  // Figure 3: deletion removes one of two isomorphic γ results — a
  // reference (node) conflict but not a value conflict.
  Tree w = Xml("<r><del><g/></del><keep><g/></keep></r>", symbols_);
  const Pattern read = Xp("r//g", symbols_);
  const Pattern del = Xp("r/del", symbols_);
  EXPECT_TRUE(IsReadDeleteWitness(read, del, w, ConflictSemantics::kNode));
  EXPECT_FALSE(IsReadDeleteWitness(read, del, w, ConflictSemantics::kValue));
}

TEST_F(FiguresTest, Figure4ReadInsertConflictStructure) {
  // Figure 4a: node conflict — the read crosses into the inserted X.
  // R = x//A/B, I at x/u, X = <A><B/></A>.
  const Pattern read = Xp("x//A/B", symbols_);
  const Pattern ins = Xp("x/u", symbols_);
  Tree x_tree = Xml("<A><B/></A>", symbols_);
  Result<ConflictReport> r = DetectLinearReadInsertConflict(
      read, ins, x_tree, ConflictSemantics::kNode);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->conflict());
  // Figure 4b: tree conflict — the insertion lands below a read result.
  const Pattern read_above = Xp("x//A", symbols_);
  const Pattern ins_below = Xp("x//A/B", symbols_);
  Tree small_x = Xml("<C/>", symbols_);
  Result<ConflictReport> node_sem = DetectLinearReadInsertConflict(
      read_above, ins_below, small_x, ConflictSemantics::kNode);
  ASSERT_TRUE(node_sem.ok());
  EXPECT_FALSE(node_sem->conflict());
  Result<ConflictReport> tree_sem = DetectLinearReadInsertConflict(
      read_above, ins_below, small_x, ConflictSemantics::kTree);
  ASSERT_TRUE(tree_sem.ok());
  EXPECT_TRUE(tree_sem->conflict());
}

TEST_F(FiguresTest, Figure5ReadDeleteConflictStructure) {
  // Figure 5: read R and delete D both match down a path; the deletion
  // point is an ancestor of the read result.
  const Pattern read = Xp("r//m//v", symbols_);
  const Pattern del = Xp("r/s//m", symbols_);
  Result<ConflictReport> r =
      DetectLinearReadDeleteConflict(read, del, ConflictSemantics::kNode);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->conflict());
  ASSERT_TRUE(r->witness.has_value());
  EXPECT_TRUE(
      IsReadDeleteWitness(read, del, *r->witness, ConflictSemantics::kNode));
}

TEST_F(FiguresTest, Figure6ReparentStructure) {
  // Figure 6: reparenting moves v's subtree behind a chain of k+1 α nodes
  // under u.
  Tree t = Xml("<u><p1><p2><p3><p4><p5><v><sub/></v></p5></p4></p3></p2></p1></u>",
               symbols_);
  NodeId v = kNullNode;
  for (NodeId n : t.PreOrder()) {
    if (t.LabelName(n) == "v") v = n;
  }
  const size_t k = 2;
  const ReparentResult r =
      Reparent(t, t.root(), v, k, symbols_->Intern("ALPHA"));
  const NodeId new_v = r.mapping.at(v);
  // v now sits k+1 alpha nodes below u.
  NodeId cur = new_v;
  for (size_t i = 0; i < k + 1; ++i) {
    cur = r.tree.parent(cur);
    EXPECT_EQ(r.tree.LabelName(cur), "ALPHA");
  }
  // The chain hangs directly under u (which was the root).
  EXPECT_EQ(r.tree.parent(cur), r.tree.root());
  EXPECT_TRUE(r.tree.Validate().ok());
}

TEST_F(FiguresTest, Figure7ReadInsertReduction) {
  // Figure 7: the Theorem 4 construction for p = m//n, p' = m/n (p ⊄ p').
  const Pattern p = Xp("m//n", symbols_);
  const Pattern q = Xp("m/n", symbols_);
  const ReadInsertReduction reduction =
      ReduceNonContainmentToReadInsert(p, q);
  const ContainmentDecision d = DecideContainment(p, q);
  ASSERT_FALSE(d.contained);
  Result<Tree> witness =
      BuildReadInsertReductionWitness(reduction, q, *d.counterexample);
  ASSERT_TRUE(witness.ok()) << witness.status();
  // Figure 7d shape: α root with two β children.
  const Tree& w = *witness;
  EXPECT_EQ(w.label(w.root()), reduction.alpha);
  const std::vector<NodeId> kids = w.Children(w.root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(w.label(kids[0]), reduction.beta);
  EXPECT_EQ(w.label(kids[1]), reduction.beta);
  // R(W) is empty; R(I(W)) selects the root.
  EXPECT_TRUE(Evaluate(reduction.read, w).empty());
}

TEST_F(FiguresTest, Figure8ReadDeleteReduction) {
  const Pattern p = Xp("m//n", symbols_);
  const Pattern q = Xp("m/n", symbols_);
  const ReadDeleteReduction reduction = ReduceNonContainmentToReadDelete(p, q);
  const ContainmentDecision d = DecideContainment(p, q);
  ASSERT_FALSE(d.contained);
  Result<Tree> witness =
      BuildReadDeleteReductionWitness(reduction, q, *d.counterexample);
  ASSERT_TRUE(witness.ok()) << witness.status();
  // Figure 8c shape: α root with a β child (holding t_p) and a γ child
  // (holding a model of p'). Before the delete R selects the root.
  const Tree& w = *witness;
  const std::vector<NodeId> kids = w.Children(w.root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(w.label(kids[0]), reduction.beta);
  EXPECT_EQ(w.label(kids[1]), reduction.gamma);
  EXPECT_EQ(Evaluate(reduction.read, w).size(), 1u);
}

}  // namespace
}  // namespace xmlup
