#include "workload/generator_spec.h"

#include <memory>
#include <string>

#include "common/json.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "workload/pattern_generator.h"
#include "workload/program_generator.h"
#include "workload/tree_generator.h"
#include "xml/symbol_table.h"

namespace xmlup {
namespace workload {
namespace {

GeneratorSpec ParseSpec(const std::string& text) {
  Result<JsonValue> json = ParseJson(text);
  EXPECT_TRUE(json.ok()) << json.status();
  Result<GeneratorSpec> spec = GeneratorSpec::FromJson(*json);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return *spec;
}

TEST(GeneratorSpecTest, DefaultsMatchOptionStructs) {
  // An empty JSON object parses to the exact struct defaults: the spec
  // layer adds no second source of truth for default values.
  const GeneratorSpec parsed = ParseSpec("{}");
  EXPECT_EQ(parsed, GeneratorSpec());
  const GeneratorSpec defaults;
  EXPECT_EQ(parsed.tree.target_size, defaults.tree.target_size);
  EXPECT_EQ(parsed.pattern.size, defaults.pattern.size);
  EXPECT_EQ(parsed.program.num_statements, defaults.program.num_statements);
}

TEST(GeneratorSpecTest, RoundTripIsIdentity) {
  GeneratorSpec spec;
  spec.alphabet_size = 5;
  spec.tree.target_size = 64;
  spec.tree.max_children = 6;
  spec.catalog.num_books = 17;
  spec.catalog.low_fraction = 0.125;
  spec.pattern.size = 7;
  spec.pattern.wildcard_prob = 0.5;
  spec.pattern.descendant_prob = 0.25;
  spec.pattern.branch_prob = 0.0625;
  spec.program.num_statements = 20;
  spec.program.read_fraction = 0.4;
  spec.program.insert_fraction = 0.35;
  spec.program.pattern = spec.pattern;

  Result<GeneratorSpec> reparsed = GeneratorSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, spec);
  // And once more through text (writer → parser).
  Result<JsonValue> json = ParseJson(WriteJson(spec.ToJson()));
  ASSERT_TRUE(json.ok());
  Result<GeneratorSpec> from_text = GeneratorSpec::FromJson(*json);
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(*from_text, spec);
}

TEST(GeneratorSpecTest, PartialSpecKeepsOtherDefaults) {
  const GeneratorSpec spec =
      ParseSpec(R"({"pattern": {"size": 9}, "alphabet_size": 2})");
  EXPECT_EQ(spec.alphabet_size, 2u);
  EXPECT_EQ(spec.pattern.size, 9u);
  const GeneratorSpec defaults;
  EXPECT_EQ(spec.pattern.wildcard_prob, defaults.pattern.wildcard_prob);
  EXPECT_EQ(spec.tree.target_size, defaults.tree.target_size);
  // The program block inherits the spec's pattern shape.
  EXPECT_EQ(spec.program.pattern.size, 9u);
}

TEST(GeneratorSpecTest, RejectsUnknownAndInvalidFields) {
  auto fails = [](const std::string& text) {
    Result<JsonValue> json = ParseJson(text);
    EXPECT_TRUE(json.ok()) << json.status();
    return !GeneratorSpec::FromJson(*json).ok();
  };
  EXPECT_TRUE(fails(R"({"alphabett_size": 3})"));          // typo
  EXPECT_TRUE(fails(R"({"tree": {"target_sizes": 8}})"));  // nested typo
  EXPECT_TRUE(fails(R"({"alphabet_size": 0})"));
  EXPECT_TRUE(fails(R"({"tree": {"target_size": 0}})"));
  EXPECT_TRUE(fails(R"({"pattern": {"size": 0}})"));
  EXPECT_TRUE(fails(R"({"pattern": {"wildcard_prob": 1.5}})"));
  EXPECT_TRUE(fails(
      R"({"program": {"read_fraction": 0.8, "insert_fraction": 0.5}})"));
  EXPECT_TRUE(fails(R"({"program": {"num_variables": 0}})"));
  EXPECT_TRUE(fails(R"({"alphabet_size": "three"})"));  // wrong type
}

TEST(GeneratorSpecTest, BindMaterializesAlphabetAndDrivesGenerators) {
  const GeneratorSpec spec = ParseSpec(
      R"({"alphabet_size": 4,
          "tree": {"target_size": 16},
          "pattern": {"size": 4},
          "program": {"num_statements": 6}})");
  auto symbols = std::make_shared<SymbolTable>();

  const TreeGenOptions tree = spec.BindTree(symbols);
  ASSERT_EQ(tree.alphabet.size(), 4u);
  EXPECT_EQ(symbols->Name(tree.alphabet[0]), "a0");
  EXPECT_EQ(symbols->Name(tree.alphabet[3]), "a3");

  const PatternGenOptions pattern = spec.BindPattern(symbols);
  EXPECT_EQ(pattern.alphabet.size(), 4u);
  const ProgramGenOptions program = spec.BindProgram(symbols);
  EXPECT_EQ(program.pattern.alphabet.size(), 4u);

  // The bound options actually generate: a tree of roughly the target
  // size, a pattern of the configured size, a program of the configured
  // length.
  Rng rng(7);
  const Tree t = RandomTreeGenerator(symbols, tree).Generate(&rng);
  EXPECT_GE(t.size(), 1u);
  const Pattern p =
      RandomPatternGenerator(symbols, pattern).GenerateLinear(&rng);
  EXPECT_EQ(p.size(), 4u);
  const Program prog =
      RandomProgramGenerator(symbols, program).Generate(&rng);
  EXPECT_EQ(prog.size(), 6u);
}

}  // namespace
}  // namespace workload
}  // namespace xmlup
