#include "analysis/incremental_dependence.h"

#include <memory>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class IncrementalDependenceTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  std::shared_ptr<const Tree> Content(const char* xml) {
    return std::make_shared<const Tree>(Xml(xml, symbols_));
  }

  Statement Read(const char* var, const char* xpath) {
    return Statement(Statement::Kind::kRead, var, "y", Xp(xpath, symbols_),
                     nullptr);
  }

  Statement Insert(const char* var, const char* xpath, const char* xml) {
    return Statement(Statement::Kind::kInsert, var, "", Xp(xpath, symbols_),
                     Content(xml));
  }

  Statement Delete(const char* var, const char* xpath) {
    return Statement(Statement::Kind::kDelete, var, "", Xp(xpath, symbols_),
                     nullptr);
  }

  static BatchDetectorOptions Options(size_t threads) {
    BatchDetectorOptions options;
    options.detector.search.max_nodes = 4;
    options.num_threads = threads;
    return options;
  }

  static Program ToProgram(const std::vector<Statement>& stmts) {
    Program program;
    program.mutable_statements() = stmts;
    return program;
  }

  /// (from, to, reason) triples — the deterministic dependence fingerprint.
  static std::vector<std::tuple<size_t, size_t, std::string>> Edges(
      const DependenceAnalysisResult& result) {
    std::vector<std::tuple<size_t, size_t, std::string>> out;
    for (const Dependence& d : result.dependences) {
      out.emplace_back(d.from, d.to, d.reason);
    }
    return out;
  }

  /// The oracle: the incremental analyzer must agree with a fresh
  /// DependenceAnalyzer over the equivalent Program, edge for edge.
  void ExpectMatchesBatchAnalyzer(
      const IncrementalDependenceAnalyzer& analyzer,
      const std::vector<Statement>& stmts) {
    ASSERT_EQ(analyzer.size(), stmts.size());
    DependenceAnalyzer scratch(Options(1));
    const DependenceAnalysisResult fresh = scratch.Analyze(ToProgram(stmts));
    const DependenceAnalysisResult incremental = analyzer.Analyze();
    EXPECT_EQ(Edges(incremental), Edges(fresh));
    EXPECT_EQ(incremental.pairs_total, fresh.pairs_total);
    EXPECT_EQ(incremental.pairs_independent, fresh.pairs_independent);
  }

  /// Statement pool over two variables, mixing reads, inserts, deletes and
  /// one malformed (root-selecting) delete.
  std::vector<Statement> Pool() {
    return {
        Read("x", "a//b"),         Read("x", "a/b/c"),
        Read("x", "x//C"),         Read("v", "a//b"),
        Insert("x", "a/b", "<c/>"), Insert("x", "a", "<b><c/></b>"),
        Insert("v", "a/b", "<c/>"), Delete("x", "a//c"),
        Delete("x", "a/zzz"),      Delete("v", "b/c"),
        Delete("x", "a"),  // malformed: selects the root
    };
  }
};

TEST_F(IncrementalDependenceTest, SetProgramMatchesBatchAnalyzer) {
  // Multi-variable program with read/read, read/update, update/update and
  // malformed-delete pairs — every classification branch at once.
  const std::vector<Statement> stmts = Pool();
  IncrementalDependenceAnalyzer analyzer(Options(2));
  analyzer.SetProgram(ToProgram(stmts));
  ExpectMatchesBatchAnalyzer(analyzer, stmts);
}

TEST_F(IncrementalDependenceTest, PaperExampleDependences) {
  // §1: insert $x/B, <C/> makes a later read $x//C dependent while a read
  // $x//D stays free.
  std::vector<Statement> stmts = {Insert("x", "x/B", "<C/>"),
                                  Read("x", "x//C"), Read("x", "x//D")};
  IncrementalDependenceAnalyzer analyzer(Options(1));
  analyzer.SetProgram(ToProgram(stmts));
  const DependenceAnalysisResult result = analyzer.Analyze();
  ASSERT_EQ(result.dependences.size(), 1u);
  EXPECT_EQ(result.dependences[0].from, 0u);
  EXPECT_EQ(result.dependences[0].to, 1u);

  // Removing the insert frees everything.
  analyzer.RemoveStatement(0);
  EXPECT_TRUE(analyzer.Analyze().dependences.empty());
  EXPECT_EQ(analyzer.IndependentPairs(),
            (std::vector<std::pair<size_t, size_t>>{{0, 1}}));
}

TEST_F(IncrementalDependenceTest, RandomEditsMatchBatchAnalyzer) {
  for (size_t threads : {size_t{1}, size_t{8}}) {
    const std::vector<Statement> pool = Pool();
    Rng rng(13);
    IncrementalDependenceAnalyzer analyzer(Options(threads));
    std::vector<Statement> stmts(pool.begin(), pool.begin() + 5);
    analyzer.SetProgram(ToProgram(stmts));
    ExpectMatchesBatchAnalyzer(analyzer, stmts);
    for (int e = 0; e < 20; ++e) {
      const uint64_t kind = rng.NextBounded(3);
      if (kind == 0 || stmts.empty()) {
        const size_t at = rng.NextBounded(stmts.size() + 1);
        const Statement& stmt = pool[rng.NextBounded(pool.size())];
        analyzer.InsertStatement(at, stmt);
        stmts.insert(stmts.begin() + static_cast<ptrdiff_t>(at), stmt);
      } else if (kind == 1) {
        const size_t at = rng.NextBounded(stmts.size());
        analyzer.RemoveStatement(at);
        stmts.erase(stmts.begin() + static_cast<ptrdiff_t>(at));
      } else {
        const size_t at = rng.NextBounded(stmts.size());
        const Statement& stmt = pool[rng.NextBounded(pool.size())];
        analyzer.ReplaceStatement(at, stmt);
        stmts[at] = stmt;
      }
      ExpectMatchesBatchAnalyzer(analyzer, stmts);
    }
  }
}

TEST_F(IncrementalDependenceTest, ReplaceAcrossKindsKeepsSlotsConsistent) {
  // read → insert → malformed delete → read again, through every slot
  // transition, oracle-checked each step.
  std::vector<Statement> stmts = {Read("x", "a//b"), Insert("x", "a", "<b/>"),
                                  Delete("x", "a//c")};
  IncrementalDependenceAnalyzer analyzer(Options(1));
  analyzer.SetProgram(ToProgram(stmts));

  const auto replace = [&](size_t at, const Statement& stmt) {
    analyzer.ReplaceStatement(at, stmt);
    stmts[at] = stmt;
    ExpectMatchesBatchAnalyzer(analyzer, stmts);
  };
  replace(0, Insert("x", "a/b", "<c/>"));  // read → update
  replace(0, Delete("x", "a"));            // update → malformed update
  replace(0, Delete("x", "a//c"));         // malformed → well-formed
  replace(0, Read("x", "x//C"));           // update → read
  replace(2, Read("x", "a/b/c"));          // delete → read
  replace(2, Read("v", "a/b/c"));          // variable change
}

TEST_F(IncrementalDependenceTest, SingleEditOfLargeProgramIsRowOrColumnWork) {
  // Acceptance criterion at the analysis layer: one statement edit of a
  // 64-read/64-update program costs at most max(N, M) = 64 new batch-pair
  // requests (update/update certificates are memoized separately and
  // re-certify at most the edited statement's pairs).
  std::vector<Statement> stmts;
  const std::vector<Statement> pool = Pool();
  for (size_t i = 0; i < 64; ++i) {
    stmts.push_back(pool[i % 4 == 3 ? 3 : i % 3]);            // reads
    stmts.push_back(pool[4 + (i % 6)]);                        // updates
  }
  IncrementalDependenceAnalyzer analyzer(Options(2));
  analyzer.SetProgram(ToProgram(stmts));
  ASSERT_EQ(analyzer.matrix().num_reads(), 64u);
  ASSERT_EQ(analyzer.matrix().num_updates(), 64u);

  const BatchStats before = analyzer.matrix().engine().stats();
  analyzer.ReplaceStatement(0, Read("x", "q//r"));
  const BatchStats& after_read = analyzer.matrix().engine().stats();
  EXPECT_LE(after_read.pairs_total - before.pairs_total, 64u);

  analyzer.ReplaceStatement(1, Delete("x", "q//r"));
  const BatchStats& after_update = analyzer.matrix().engine().stats();
  EXPECT_LE(after_update.pairs_total - after_read.pairs_total, 64u);

  analyzer.RemoveStatement(2);
  const BatchStats& after_remove = analyzer.matrix().engine().stats();
  EXPECT_EQ(after_remove.pairs_total, after_update.pairs_total);
}

TEST_F(IncrementalDependenceTest, IndependentPairsComplementDependences) {
  const std::vector<Statement> stmts = Pool();
  IncrementalDependenceAnalyzer analyzer(Options(2));
  analyzer.SetProgram(ToProgram(stmts));
  const DependenceAnalysisResult result = analyzer.Analyze();
  const auto independent = analyzer.IndependentPairs();
  EXPECT_EQ(independent.size(), result.pairs_independent);
  EXPECT_EQ(independent.size() + result.dependences.size(),
            result.pairs_total);
  std::vector<bool> dependent(stmts.size() * stmts.size(), false);
  for (const Dependence& d : result.dependences) {
    dependent[d.from * stmts.size() + d.to] = true;
  }
  for (const auto& [i, j] : independent) {
    EXPECT_LT(i, j);
    EXPECT_FALSE(dependent[i * stmts.size() + j]);
  }
}

}  // namespace
}  // namespace xmlup
