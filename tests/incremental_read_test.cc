#include "eval/incremental_read.h"

#include "common/random.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "workload/tree_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class IncrementalReadTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(IncrementalReadTest, InitialResultsMatchEvaluator) {
  Tree t = Xml("<a><b><c/></b><b/><d><b/></d></a>", symbols_);
  const Pattern p = Xp("a//b", symbols_);
  Result<IncrementalRead> read = IncrementalRead::Make(p, &t);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->Results(), Evaluate(p, t));
}

TEST_F(IncrementalReadTest, RejectsBranchingAndHugePatterns) {
  Tree t = Xml("<a/>", symbols_);
  EXPECT_FALSE(IncrementalRead::Make(Xp("a[b]", symbols_), &t).ok());
  Pattern huge(symbols_);
  PatternNodeId n = huge.CreateRoot(symbols_->Intern("a"));
  for (int i = 0; i < 70; ++i) {
    n = huge.AddChild(n, kWildcardLabel, Axis::kChild);
  }
  huge.SetOutput(n);
  EXPECT_FALSE(IncrementalRead::Make(huge, &t).ok());
}

TEST_F(IncrementalReadTest, InsertAddsResultsIncrementally) {
  Tree t = Xml("<a><B/></a>", symbols_);
  const Pattern p = Xp("a//C", symbols_);
  Result<IncrementalRead> read = IncrementalRead::Make(p, &t);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->Results().empty());

  InsertOp insert(Xp("a/B", symbols_),
                  std::make_shared<const Tree>(Xml("<C><C/></C>", symbols_)));
  const InsertOp::Applied applied = insert.ApplyInPlace(&t);
  read->OnInsert(applied);
  EXPECT_EQ(read->Results(), Evaluate(p, t));
  EXPECT_EQ(read->Results().size(), 2u);
}

TEST_F(IncrementalReadTest, DeleteRemovesResultsLazily) {
  Tree t = Xml("<a><b><m/></b><c><m/></c></a>", symbols_);
  const Pattern p = Xp("a//m", symbols_);
  Result<IncrementalRead> read = IncrementalRead::Make(p, &t);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->Results().size(), 2u);

  Result<DeleteOp> del = DeleteOp::Make(Xp("a/b", symbols_));
  ASSERT_TRUE(del.ok());
  del->ApplyInPlace(&t);
  read->OnDelete();
  EXPECT_EQ(read->Results(), Evaluate(p, t));
  EXPECT_EQ(read->Results().size(), 1u);
}

TEST_F(IncrementalReadTest, MixedUpdateSequence) {
  Tree t = Xml("<r><x/><y/></r>", symbols_);
  const Pattern p = Xp("r//q", symbols_);
  Result<IncrementalRead> read = IncrementalRead::Make(p, &t);
  ASSERT_TRUE(read.ok());

  InsertOp ins1(Xp("r/x", symbols_),
                std::make_shared<const Tree>(Xml("<q/>", symbols_)));
  read->OnInsert(ins1.ApplyInPlace(&t));
  EXPECT_EQ(read->Results(), Evaluate(p, t));

  InsertOp ins2(Xp("r//q", symbols_),
                std::make_shared<const Tree>(Xml("<q/>", symbols_)));
  read->OnInsert(ins2.ApplyInPlace(&t));
  EXPECT_EQ(read->Results(), Evaluate(p, t));

  Result<DeleteOp> del = DeleteOp::Make(Xp("r/x", symbols_));
  ASSERT_TRUE(del.ok());
  del->ApplyInPlace(&t);
  read->OnDelete();
  EXPECT_EQ(read->Results(), Evaluate(p, t));
}

TEST_F(IncrementalReadTest, ChildAxisAndWildcards) {
  Tree t = Xml("<a><w/></a>", symbols_);
  const Pattern p = Xp("a/*/n", symbols_);
  Result<IncrementalRead> read = IncrementalRead::Make(p, &t);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->Results().empty());
  InsertOp ins(Xp("a/w", symbols_),
               std::make_shared<const Tree>(Xml("<n/>", symbols_)));
  read->OnInsert(ins.ApplyInPlace(&t));
  ASSERT_EQ(read->Results().size(), 1u);
  EXPECT_EQ(t.LabelName(read->Results()[0]), "n");
}

/// Property: a random interleaving of inserts and deletes, with the
/// incremental result set cross-checked against full evaluation at every
/// step.
class IncrementalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalPropertyTest, AgreesWithFullEvaluation) {
  auto symbols = NewSymbols();
  Rng rng(70000 + GetParam());

  PatternGenOptions pattern_options;
  pattern_options.size = 3;
  pattern_options.alphabet = {symbols->Intern("a"), symbols->Intern("b"),
                              symbols->Intern("c")};
  RandomPatternGenerator patterns(symbols, pattern_options);

  TreeGenOptions tree_options;
  tree_options.target_size = 25;
  tree_options.alphabet = pattern_options.alphabet;
  RandomTreeGenerator trees(symbols, tree_options);

  for (int iter = 0; iter < 5; ++iter) {
    Tree t = trees.Generate(&rng);
    const Pattern watched = patterns.GenerateLinear(&rng);
    Result<IncrementalRead> read = IncrementalRead::Make(watched, &t);
    ASSERT_TRUE(read.ok());
    for (int step = 0; step < 12; ++step) {
      if (rng.NextBool(0.6)) {
        Tree content = trees.Generate(&rng);
        InsertOp ins(patterns.GenerateLinear(&rng),
                     std::make_shared<const Tree>(std::move(content)));
        read->OnInsert(ins.ApplyInPlace(&t));
      } else {
        Pattern del_pattern = patterns.GenerateLinear(&rng);
        if (del_pattern.output() == del_pattern.root()) continue;
        Result<DeleteOp> del = DeleteOp::Make(std::move(del_pattern));
        ASSERT_TRUE(del.ok());
        del->ApplyInPlace(&t);
        read->OnDelete();
      }
      ASSERT_EQ(read->Results(), Evaluate(watched, t))
          << "seed=" << GetParam() << " iter=" << iter << " step=" << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace xmlup
