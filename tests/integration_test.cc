// End-to-end flows across modules: XML in, XPath in, conflict analysis,
// program optimization, serialized XML out.

#include "analysis/interpreter.h"
#include "analysis/optimizer.h"
#include "common/random.h"
#include "conflict/detector.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "ops/operations.h"
#include "tests/test_util.h"
#include "workload/catalog_generator.h"
#include "xml/tree_algos.h"
#include "xml/xml_writer.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

TEST(IntegrationTest, RestockPipeline) {
  auto symbols = NewSymbols();
  Rng rng(99);
  CatalogOptions options;
  options.num_books = 100;
  options.low_fraction = 0.25;
  Tree catalog = GenerateCatalog(symbols, options, &rng);
  const size_t low_before =
      Evaluate(Xp("catalog/book[.//low]", symbols), catalog).size();

  // The paper's insert: add <restock/> to low-quantity books.
  InsertOp restock(Xp("catalog/book[.//low]", symbols),
                   std::make_shared<const Tree>(Xml("<restock/>", symbols)));
  const InsertOp::Applied applied = restock.ApplyInPlace(&catalog);
  EXPECT_EQ(applied.insertion_points.size(), low_before);
  EXPECT_EQ(Evaluate(Xp("catalog/book/restock", symbols), catalog).size(),
            low_before);

  // Round-trip through XML.
  const std::string xml = WriteXml(catalog);
  Tree reparsed = Xml(xml, symbols);
  EXPECT_EQ(reparsed.size(), catalog.size());
}

TEST(IntegrationTest, ConflictAwareCompilerPass) {
  auto symbols = NewSymbols();
  // A program mixing independent and dependent operations.
  Program program;
  program.AddRead("titles", "cat", Xp("catalog//title", symbols));
  program.AddInsert("cat", Xp("catalog/book[.//low]", symbols),
                    std::make_shared<const Tree>(Xml("<restock/>", symbols)));
  program.AddRead("restocks", "cat", Xp("catalog//restock", symbols));
  program.AddRead("titles2", "cat", Xp("catalog//title", symbols));

  DetectorOptions dopts;
  dopts.semantics = ConflictSemantics::kTree;
  Optimizer optimizer(dopts);
  const OptimizeResult optimized = optimizer.EliminateCommonReads(program);
  // titles2 can reuse titles: inserting <restock/> never changes //title
  // results (restock contains no title).
  EXPECT_EQ(optimized.reads_aliased, 1u);

  // The dependence analysis keeps restocks after the insert.
  DependenceAnalyzer analyzer(dopts);
  const DependenceAnalysisResult deps = analyzer.Analyze(program);
  bool insert_blocks_restocks = false;
  for (const Dependence& d : deps.dependences) {
    if (d.from == 1 && d.to == 2) insert_blocks_restocks = true;
  }
  EXPECT_TRUE(insert_blocks_restocks);

  // Execute original and optimized: same observable reads.
  Rng rng(5);
  CatalogOptions catalog_options;
  catalog_options.num_books = 30;
  // Clone a common prototype twice so node ids line up across both runs.
  TreeStore prototype(symbols);
  prototype.Put("cat", GenerateCatalog(symbols, catalog_options, &rng));
  TreeStore store = prototype.Clone();
  TreeStore store2 = prototype.Clone();
  Result<ExecutionTrace> t1 = Execute(program, &store);
  Result<ExecutionTrace> t2 = Execute(optimized.program, &store2);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_EQ(t1->reads.size(), t2->reads.size());
  for (size_t i = 0; i < t1->reads.size(); ++i) {
    EXPECT_EQ(t1->reads[i].nodes, t2->reads[i].nodes);
  }
}

TEST(IntegrationTest, DetectorMatchesExecutionOnCatalogWorkload) {
  // For a batch of reads and updates over the catalog schema, whenever
  // the detector proves independence, executing the update must leave the
  // read's result unchanged on concrete documents.
  auto symbols = NewSymbols();
  Rng rng(17);
  CatalogOptions options;
  options.num_books = 40;
  Tree catalog = GenerateCatalog(symbols, options, &rng);

  const char* reads[] = {"catalog//title", "catalog/book",
                         "catalog//restock", "catalog//low",
                         "catalog/book/stock/quantity"};
  const char* inserts[] = {"catalog/book[.//low]", "catalog/book",
                           "catalog//quantity"};
  const char* contents[] = {"<restock/>", "<note><flag/></note>"};

  for (const char* read_xpath : reads) {
    for (const char* insert_xpath : inserts) {
      for (const char* content_xml : contents) {
        const Pattern read = Xp(read_xpath, symbols);
        const Pattern ins = Xp(insert_xpath, symbols);
        auto x = std::make_shared<const Tree>(Xml(content_xml, symbols));
        Result<ConflictReport> report =
            Detect(read, UpdateOp::MakeInsert(ins, x));
        ASSERT_TRUE(report.ok());
        if (report->verdict != ConflictVerdict::kNoConflict) continue;
        // Execute on the concrete catalog: results must be identical.
        Tree work = CopyTree(catalog);
        const std::vector<NodeId> before = Evaluate(read, work);
        InsertOp op(ins, x);
        op.ApplyInPlace(&work);
        EXPECT_EQ(Evaluate(read, work), before)
            << read_xpath << " should be independent of insert at "
            << insert_xpath;
      }
    }
  }
}

TEST(IntegrationTest, FunctionalVsMutatingSemanticsAgree) {
  auto symbols = NewSymbols();
  Tree t = Xml("<a><b/><b><c/></b></a>", symbols);
  InsertOp ins(Xp("a/b", symbols),
               std::make_shared<const Tree>(Xml("<n/>", symbols)));
  Tree functional = ins.ApplyFunctional(t);
  Tree mutating = CopyTree(t);
  ins.ApplyInPlace(&mutating);
  EXPECT_EQ(WriteXml(functional), WriteXml(mutating));
}

}  // namespace
}  // namespace xmlup
