#include "xml/isomorphism.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;

class IsomorphismTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(IsomorphismTest, IgnoresChildOrder) {
  Tree t1 = Xml("<a><b/><c/></a>", symbols_);
  Tree t2 = Xml("<a><c/><b/></a>", symbols_);
  EXPECT_TRUE(Isomorphic(t1, t1.root(), t2, t2.root()));
  EXPECT_EQ(CanonicalCode(t1), CanonicalCode(t2));
}

TEST_F(IsomorphismTest, LabelsMatter) {
  Tree t1 = Xml("<a><b/></a>", symbols_);
  Tree t2 = Xml("<a><c/></a>", symbols_);
  EXPECT_FALSE(Isomorphic(t1, t1.root(), t2, t2.root()));
}

TEST_F(IsomorphismTest, MultiplicityMatters) {
  Tree t1 = Xml("<a><b/><b/></a>", symbols_);
  Tree t2 = Xml("<a><b/></a>", symbols_);
  EXPECT_FALSE(Isomorphic(t1, t1.root(), t2, t2.root()));
}

TEST_F(IsomorphismTest, DeepPermutation) {
  Tree t1 = Xml("<r><a><x/><y><z/></y></a><b/></r>", symbols_);
  Tree t2 = Xml("<r><b/><a><y><z/></y><x/></a></r>", symbols_);
  EXPECT_TRUE(Isomorphic(t1, t1.root(), t2, t2.root()));
}

TEST_F(IsomorphismTest, SubtreeComparison) {
  Tree t = Xml("<r><a><x/></a><b><x/></b></r>", symbols_);
  const std::vector<NodeId> kids = t.Children(t.root());
  ASSERT_EQ(kids.size(), 2u);
  // <a><x/></a> vs <b><x/></b>: different root labels.
  EXPECT_FALSE(Isomorphic(t, kids[0], t, kids[1]));
  // But their x children are isomorphic.
  EXPECT_TRUE(Isomorphic(t, t.first_child(kids[0]), t,
                         t.first_child(kids[1])));
}

TEST_F(IsomorphismTest, CrossSymbolTableComparison) {
  auto other = NewSymbols();
  other->Intern("decoy1");  // shift label ids
  other->Intern("decoy2");
  Tree t1 = Xml("<a><b/></a>", symbols_);
  Tree t2 = Xml("<a><b/></a>", other);
  EXPECT_TRUE(Isomorphic(t1, t1.root(), t2, t2.root()));
}

TEST_F(IsomorphismTest, SetSemanticsCollapsesDuplicates) {
  // This is the paper's Figure 3 situation: a set containing two
  // isomorphic subtrees is set-isomorphic to a set containing one.
  Tree t1 = Xml("<r><g/><g/></r>", symbols_);
  Tree t2 = Xml("<r><g/></r>", symbols_);
  const std::vector<NodeId> roots1 = t1.Children(t1.root());
  const std::vector<NodeId> roots2 = t2.Children(t2.root());
  EXPECT_TRUE(SetsIsomorphic(t1, roots1, t2, roots2));
  EXPECT_FALSE(MultisetsIsomorphic(t1, roots1, t2, roots2));
}

TEST_F(IsomorphismTest, SetSemanticsBothDirections) {
  Tree t1 = Xml("<r><a/><b/></r>", symbols_);
  Tree t2 = Xml("<r><a/></r>", symbols_);
  EXPECT_FALSE(SetsIsomorphic(t1, t1.Children(t1.root()), t2,
                              t2.Children(t2.root())));
}

TEST_F(IsomorphismTest, EmptySets) {
  Tree t1 = Xml("<r/>", symbols_);
  Tree t2 = Xml("<r/>", symbols_);
  EXPECT_TRUE(SetsIsomorphic(t1, {}, t2, {}));
  EXPECT_FALSE(SetsIsomorphic(t1, {t1.root()}, t2, {}));
}

TEST_F(IsomorphismTest, CanonicalCodeOnDeepChain) {
  // Exercise the iterative code path on a deep chain.
  Tree t(symbols_);
  NodeId n = t.CreateRoot(symbols_->Intern("c"));
  for (int i = 0; i < 500; ++i) n = t.AddChild(n, symbols_->Intern("c"));
  const std::string code = CanonicalCode(t);
  EXPECT_EQ(code.size(), 501u * 3);  // "(c" + ")" per node
}

}  // namespace
}  // namespace xmlup
