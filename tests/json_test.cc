#include "common/json.h"

#include <cstdint>
#include <string>

#include "gtest/gtest.h"

namespace xmlup {
namespace {

TEST(JsonParseTest, Primitives) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->AsBool(), true);
  EXPECT_EQ(ParseJson("false")->AsBool(), false);
  EXPECT_DOUBLE_EQ(ParseJson("42")->AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-3.25e2")->AsDouble(), -325.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, NestedStructures) {
  Result<JsonValue> parsed =
      ParseJson(R"({"a": [1, 2, {"b": null}], "c": {"d": "e"}})");
  ASSERT_TRUE(parsed.ok());
  const JsonValue::Array& a = parsed->Find("a")->AsArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].AsDouble(), 2.0);
  EXPECT_TRUE(a[2].Find("b")->is_null());
  EXPECT_EQ(parsed->Find("c")->Find("d")->AsString(), "e");
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(ParseJson(R"("a\"b\\c\/d\n\t")")->AsString(), "a\"b\\c/d\n\t");
  // \u escapes decode to UTF-8, including surrogate pairs.
  EXPECT_EQ(ParseJson(R"("Aé")")->AsString(), "A\xc3\xa9");
  EXPECT_EQ(ParseJson(R"("😀")")->AsString(),
            "\xf0\x9f\x98\x80");  // U+1F600
}

TEST(JsonParseTest, ErrorsCarryPositionAndReject) {
  // Trailing garbage.
  EXPECT_FALSE(ParseJson("{} x").ok());
  // Duplicate keys are config typos, not merges.
  Result<JsonValue> dup = ParseJson(R"({"a": 1, "a": 2})");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
  // Unterminated constructs.
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_FALSE(ParseJson("\"abc").ok());
  // Bad numbers under the strict grammar.
  EXPECT_FALSE(ParseJson("01").ok());
  EXPECT_FALSE(ParseJson("1.").ok());
  EXPECT_FALSE(ParseJson("+1").ok());
  // Bare words.
  EXPECT_FALSE(ParseJson("nul").ok());
  // Errors include line:column.
  Result<JsonValue> err = ParseJson("{\n  \"a\": ]\n}");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("2:"), std::string::npos);
}

TEST(JsonParseTest, DepthCapGuardsRecursion) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
  JsonParseOptions options;
  options.max_depth = 200;
  EXPECT_TRUE(ParseJson(deep, options).ok());
}

TEST(JsonWriteTest, CompactAndRoundTrip) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("n", 42);
  object.Set("f", 2.5);
  object.Set("s", "a\"b");
  JsonValue array = JsonValue::MakeArray();
  array.Append(true);
  array.Append(nullptr);
  object.Set("a", std::move(array));
  const std::string text = WriteJson(object);
  // Integral doubles print without a decimal point; members keep
  // insertion order.
  EXPECT_EQ(text, R"({"n":42,"f":2.5,"s":"a\"b","a":[true,null]})");
  Result<JsonValue> reparsed = ParseJson(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, object);
}

TEST(JsonWriteTest, PrettyPrintsIndented) {
  Result<JsonValue> parsed = ParseJson(R"({"a": [1], "b": {}})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(WriteJsonPretty(*parsed),
            "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}\n");
}

TEST(JsonWriteTest, LargeIntegersRoundTripTextually) {
  // 2^53 - 1 is the largest exactly-representable odd integer.
  EXPECT_EQ(WriteJson(ParseJson("9007199254740991").value()),
            "9007199254740991");
  EXPECT_EQ(WriteJson(JsonValue(uint64_t{1} << 32)), "4294967296");
}

TEST(JsonEqualityTest, ObjectOrderInsensitive) {
  const JsonValue a = ParseJson(R"({"x": 1, "y": [2, 3]})").value();
  const JsonValue b = ParseJson(R"({"y": [2, 3], "x": 1})").value();
  const JsonValue c = ParseJson(R"({"x": 1, "y": [3, 2]})").value();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // array order matters
  EXPECT_NE(a, ParseJson(R"({"x": 1})").value());
}

TEST(JsonObjectReaderTest, AbsentKeysKeepDefaults) {
  const JsonValue json = ParseJson(R"({"present": 7})").value();
  JsonObjectReader reader(json, "ctx");
  size_t present = 1;
  size_t absent = 99;
  reader.Size("present", &present);
  reader.Size("absent", &absent);
  EXPECT_TRUE(reader.Finish().ok());
  EXPECT_EQ(present, 7u);
  EXPECT_EQ(absent, 99u);  // untouched: the struct default survives
}

TEST(JsonObjectReaderTest, UnknownKeyIsAnError) {
  const JsonValue json = ParseJson(R"({"workers": 2, "wrokers": 3})").value();
  JsonObjectReader reader(json, "phase");
  size_t workers = 1;
  reader.Size("workers", &workers);
  Status status = reader.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("wrokers"), std::string::npos);
  EXPECT_NE(status.message().find("phase"), std::string::npos);
}

TEST(JsonObjectReaderTest, TypeAndRangeViolations) {
  const JsonValue json =
      ParseJson(R"({"frac": 1.5, "count": 2.5, "neg": -1, "s": 3})").value();
  {
    JsonObjectReader reader(json, "");
    double frac = 0;
    reader.Fraction("frac", &frac);  // 1.5 out of [0, 1]
    reader.Child("count");
    reader.Child("neg");
    reader.Child("s");
    EXPECT_FALSE(reader.Finish().ok());
  }
  {
    JsonObjectReader reader(json, "");
    size_t count = 0;
    reader.Size("count", &count);  // 2.5 is not integral
    reader.Child("frac");
    reader.Child("neg");
    reader.Child("s");
    EXPECT_FALSE(reader.Finish().ok());
  }
  {
    JsonObjectReader reader(json, "");
    size_t neg = 0;
    reader.Size("neg", &neg);  // negative
    reader.Child("frac");
    reader.Child("count");
    reader.Child("s");
    EXPECT_FALSE(reader.Finish().ok());
  }
  {
    JsonObjectReader reader(json, "");
    std::string s;
    reader.String("s", &s);  // number where a string is expected
    reader.Child("frac");
    reader.Child("count");
    reader.Child("neg");
    EXPECT_FALSE(reader.Finish().ok());
  }
}

TEST(JsonObjectReaderTest, NonObjectValueFails) {
  const JsonValue json = ParseJson("[1, 2]").value();
  JsonObjectReader reader(json, "spec");
  EXPECT_FALSE(reader.Finish().ok());
}

TEST(JsonObjectReaderTest, ChildAndRecordError) {
  const JsonValue json = ParseJson(R"({"nested": {"k": 1}})").value();
  JsonObjectReader reader(json, "");
  const JsonValue* nested = reader.Child("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_DOUBLE_EQ(nested->Find("k")->AsDouble(), 1.0);
  EXPECT_EQ(reader.Child("missing"), nullptr);
  EXPECT_TRUE(reader.Finish().ok());  // Child consumed the key

  JsonObjectReader failing(json, "");
  failing.Child("nested");
  failing.RecordError("custom validation failed");
  Status status = failing.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("custom validation failed"),
            std::string::npos);
}

}  // namespace
}  // namespace xmlup
