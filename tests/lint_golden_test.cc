// Golden-file tests for the lint renderers: a fixed program (the same
// fixture the README quickstart uses) must render to byte-identical JSON
// and SARIF. The engine's determinism guarantee makes this safe across
// thread counts and machines; if a renderer change is intentional, update
// tests/goldens/lint.json / lint.sarif (the failure message prints the
// actual output, and `xmlup_lint tests/goldens/lint_demo.xup
// --format=json` regenerates it from a build tree).

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/lint.h"
#include "analysis/program_parser.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;

std::string ReadGolden(const std::string& name) {
  const std::string path = std::string(XMLUP_TEST_SRCDIR) + "/goldens/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  while (!content.empty() && content.back() == '\n') content.pop_back();
  return content;
}

class LintGoldenTest : public ::testing::Test {
 protected:
  ParsedProgram Fixture() {
    Result<ParsedProgram> parsed =
        ParseProgram(ReadGolden("lint_demo.xup"), symbols_);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    return std::move(parsed).value();
  }

  LintResult LintFixture(const ParsedProgram& parsed) {
    // CLI-default options; goldens regenerate via examples/xmlup_lint.
    const Linter linter;
    return linter.Lint(parsed.program);
  }

  LintRenderOptions Render(const ParsedProgram& parsed) {
    LintRenderOptions options;
    options.artifact_uri = "lint_demo.xup";
    options.lines = &parsed.lines;
    return options;
  }

  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(LintGoldenTest, JsonMatchesGolden) {
  const ParsedProgram parsed = Fixture();
  const LintResult result = LintFixture(parsed);
  const std::string json =
      RenderLintJson(parsed.program, result, Render(parsed));
  EXPECT_EQ(json, ReadGolden("lint.json")) << "actual:\n" << json;
}

TEST_F(LintGoldenTest, SarifMatchesGolden) {
  const ParsedProgram parsed = Fixture();
  const LintResult result = LintFixture(parsed);
  const std::string sarif =
      RenderLintSarif(parsed.program, result, Render(parsed));
  EXPECT_EQ(sarif, ReadGolden("lint.sarif")) << "actual:\n" << sarif;
}

TEST_F(LintGoldenTest, GoldenIsThreadCountInvariant) {
  const ParsedProgram parsed = Fixture();
  LintOptions options;
  options.batch.num_threads = 8;
  const LintResult result = Linter(options).Lint(parsed.program);
  EXPECT_EQ(RenderLintJson(parsed.program, result, Render(parsed)),
            ReadGolden("lint.json"));
}

}  // namespace
}  // namespace xmlup
