// Randomized semantic oracle for the lint engine's fix-its (the PR's
// acceptance gate): on hundreds of generated programs, every fix-it the
// linter emits — dead-read removal, CSE alias, partitioner reorder — must
// preserve the observable semantics of the program: the final value of
// every result variable (canonical codes of the last read into it) and the
// final value of every tree variable (canonical code). Lint results must
// also be identical at 1 and 8 engine threads.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/interpreter.h"
#include "analysis/lint.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/program_generator.h"
#include "workload/tree_generator.h"
#include "xml/isomorphism.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;

/// What a program run leaves behind, value-level: trace shape (how many
/// reads executed) legitimately differs across transformed programs, so
/// only end-state facts are compared.
struct Observables {
  /// result_var -> sorted canonical codes of the last read into it.
  std::map<std::string, std::vector<std::string>> final_values;
  /// tree variable -> canonical code of its final tree.
  std::map<std::string, std::string> final_trees;
};

Observables Observe(const Program& program, const TreeStore& initial,
                    const std::vector<std::string>& variables) {
  TreeStore store = initial.Clone();
  Result<ExecutionTrace> trace = Execute(program, &store);
  EXPECT_TRUE(trace.ok()) << trace.status();
  Observables obs;
  if (trace.ok()) {
    for (const auto& read : trace->reads) {
      obs.final_values[read.result_var] = read.codes;  // later reads win
    }
  }
  for (const std::string& var : variables) {
    obs.final_trees[var] = CanonicalCode(store.Get(var));
  }
  return obs;
}

class LintOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(LintOracleTest, FixItsPreserveObservableSemantics) {
  auto symbols = NewSymbols();
  Rng rng(91000 + GetParam());

  ProgramGenOptions program_options;
  program_options.num_statements = 8;
  program_options.num_variables = 2;
  program_options.repeat_read_prob = 0.4;  // CSE opportunities
  program_options.pattern.size = 3;
  program_options.pattern.alphabet = {symbols->Intern("a"),
                                      symbols->Intern("b"),
                                      symbols->Intern("c")};
  RandomProgramGenerator programs(symbols, program_options);
  const std::vector<std::string> variables = programs.VariableNames();

  TreeGenOptions tree_options;
  tree_options.target_size = 12;
  tree_options.alphabet = program_options.pattern.alphabet;
  RandomTreeGenerator trees(symbols, tree_options);

  LintOptions one_thread;
  one_thread.batch.num_threads = 1;
  one_thread.batch.detector.search.max_nodes = 4;
  LintOptions eight_threads = one_thread;
  eight_threads.batch.num_threads = 8;
  const Linter linter(one_thread);
  const Linter linter8(eight_threads);

  constexpr int kProgramsPerSeed = 20;  // 10 seeds × 20 = 200 programs
  size_t fixits_checked = 0;
  for (int iter = 0; iter < kProgramsPerSeed; ++iter) {
    Program program = programs.Generate(&rng);
    // Cycle the generator's unique result vars down to three names on half
    // the programs: overwritten variables make the dead-read pass fire.
    if (rng.NextBool(0.5)) {
      size_t read_index = 0;
      for (Statement& s : program.mutable_statements()) {
        if (s.kind == Statement::Kind::kRead) {
          s.result_var = "r" + std::to_string(read_index++ % 3);
        }
      }
    }

    const LintResult result = linter.Lint(program);
    const LintResult result8 = linter8.Lint(program);
    EXPECT_EQ(RenderLintJson(program, result),
              RenderLintJson(program, result8))
        << "lint differs across thread counts; seed=" << GetParam()
        << " iter=" << iter << "\n" << program.ToString();

    TreeStore store(symbols);
    for (const std::string& var : variables) {
      store.Put(var, trees.Generate(&rng));
    }
    const Observables baseline = Observe(program, store, variables);

    for (const Diagnostic& d : result.diagnostics) {
      if (!d.fixit.has_value()) continue;
      Result<Program> transformed = ApplyLintFixIt(program, *d.fixit);
      ASSERT_TRUE(transformed.ok())
          << "fix-it failed to apply: " << transformed.status()
          << "\nrule=" << GetLintRuleInfo(d.rule).id << " seed=" << GetParam()
          << " iter=" << iter << "\n" << program.ToString();
      const Observables after = Observe(*transformed, store, variables);
      EXPECT_EQ(baseline.final_trees, after.final_trees)
          << "fix-it changed a final tree; rule=" << GetLintRuleInfo(d.rule).id
          << " seed=" << GetParam() << " iter=" << iter << "\n"
          << program.ToString() << "->\n" << transformed->ToString();
      // Every variable the original program leaves defined must hold the
      // same value. (A dead-read removal can only drop *overwritten*
      // intermediate states, never the final one.)
      for (const auto& [var, codes] : baseline.final_values) {
        const auto it = after.final_values.find(var);
        ASSERT_NE(it, after.final_values.end())
            << "fix-it dropped the final value of '" << var
            << "'; rule=" << GetLintRuleInfo(d.rule).id
            << " seed=" << GetParam() << " iter=" << iter << "\n"
            << program.ToString() << "->\n" << transformed->ToString();
        EXPECT_EQ(codes, it->second)
            << "fix-it changed the final value of '" << var
            << "'; rule=" << GetLintRuleInfo(d.rule).id
            << " seed=" << GetParam() << " iter=" << iter << "\n"
            << program.ToString() << "->\n" << transformed->ToString();
      }
      ++fixits_checked;
    }
  }
  // The workload must actually exercise the oracle: across 20 programs at
  // this shape some fix-its always appear (partition reorders at minimum).
  EXPECT_GT(fixits_checked, 0u) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, LintOracleTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace xmlup
