#include "analysis/lint.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/program_parser.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class LintTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  std::shared_ptr<const Tree> Content(const char* xml) {
    return std::make_shared<const Tree>(Xml(xml, symbols_));
  }

  std::vector<const Diagnostic*> ByRule(const LintResult& result,
                                        LintRule rule) {
    std::vector<const Diagnostic*> out;
    for (const Diagnostic& d : result.diagnostics) {
      if (d.rule == rule) out.push_back(&d);
    }
    return out;
  }
};

TEST_F(LintTest, CleanProgramHasOnlyPartitionReport) {
  Program program;
  program.AddRead("y", "x", Xp("a/b", symbols_));
  program.AddInsert("x", Xp("a/c", symbols_), Content("<d/>"));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, LintRule::kParallelPartition);
  EXPECT_FALSE(result.HasErrors());
  // read a/b and insert at a/c don't conflict → both fit in one batch.
  EXPECT_EQ(result.partition.width, 2u);
}

TEST_F(LintTest, DeadReadDetectedWithRemoveFixIt) {
  Program program;
  program.AddRead("y", "x", Xp("a/b", symbols_));
  program.AddRead("y", "x", Xp("a/c", symbols_));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  const auto dead = ByRule(result, LintRule::kDeadRead);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0]->statements, (std::vector<size_t>{0, 1}));
  ASSERT_TRUE(dead[0]->fixit.has_value());
  EXPECT_EQ(dead[0]->fixit->kind, LintFixIt::Kind::kRemoveStatement);
  EXPECT_EQ(dead[0]->fixit->statement, 0u);

  Result<Program> fixed = ApplyLintFixIt(program, *dead[0]->fixit);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->size(), 1u);
}

TEST_F(LintTest, LastReadOfVariableIsNotDead) {
  Program program;
  program.AddRead("y", "x", Xp("a/b", symbols_));
  program.AddRead("z", "x", Xp("a/c", symbols_));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  EXPECT_TRUE(ByRule(result, LintRule::kDeadRead).empty());
}

TEST_F(LintTest, RedundantReadDetectedWithAliasFixIt) {
  Program program;
  program.AddRead("y", "x", Xp("a/b", symbols_));
  program.AddInsert("x", Xp("a/c", symbols_), Content("<d/>"));  // no conflict
  program.AddRead("z", "x", Xp("a/b", symbols_));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  const auto cse = ByRule(result, LintRule::kRedundantRead);
  ASSERT_EQ(cse.size(), 1u);
  EXPECT_EQ(cse[0]->statements, (std::vector<size_t>{2, 0}));
  ASSERT_TRUE(cse[0]->fixit.has_value());
  EXPECT_EQ(cse[0]->fixit->kind, LintFixIt::Kind::kAliasRead);
  EXPECT_EQ(cse[0]->fixit->statement, 2u);
  EXPECT_EQ(cse[0]->fixit->alias_of, 0u);

  Result<Program> fixed = ApplyLintFixIt(program, *cse[0]->fixit);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->statements()[2].alias_of, std::optional<size_t>(0));
}

TEST_F(LintTest, ConflictingUpdateBlocksRedundantRead) {
  Program program;
  program.AddRead("y", "x", Xp("a/b", symbols_));
  program.AddInsert("x", Xp("a/b", symbols_), Content("<d/>"));  // tree conflict
  program.AddRead("z", "x", Xp("a/b", symbols_));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  EXPECT_TRUE(ByRule(result, LintRule::kRedundantRead).empty());
}

TEST_F(LintTest, ShadowedUpdateDetected) {
  Program program;
  program.AddInsert("x", Xp("a", symbols_), Content("<b/>"));
  program.AddDelete("x", Xp("a/b", symbols_));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  const auto shadowed = ByRule(result, LintRule::kShadowedUpdate);
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->statements, (std::vector<size_t>{0, 1}));
  ASSERT_TRUE(shadowed[0]->fixit.has_value());
  EXPECT_EQ(shadowed[0]->fixit->statement, 0u);
}

TEST_F(LintTest, InterveningReadBlocksShadowedUpdate) {
  Program program;
  program.AddInsert("x", Xp("a", symbols_), Content("<b/>"));
  program.AddRead("y", "x", Xp("a/b", symbols_));  // observes the insert
  program.AddDelete("x", Xp("a/b", symbols_));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  EXPECT_TRUE(ByRule(result, LintRule::kShadowedUpdate).empty());
}

TEST_F(LintTest, WildcardDeleteDoesNotShadow) {
  // q = //b has a wildcard root: the insert could enable new q-matches on
  // pre-existing nodes, so the conservative pass stays silent.
  Program program;
  program.AddInsert("x", Xp("a", symbols_), Content("<b/>"));
  program.AddDelete("x", Xp("//b", symbols_));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  EXPECT_TRUE(ByRule(result, LintRule::kShadowedUpdate).empty());
}

TEST_F(LintTest, NonCoveringDeleteDoesNotShadow) {
  Program program;
  program.AddInsert("x", Xp("a", symbols_), Content("<b/>"));
  program.AddDelete("x", Xp("a/c", symbols_));  // deletes c's, not b's
  const Linter linter;
  const LintResult result = linter.Lint(program);
  EXPECT_TRUE(ByRule(result, LintRule::kShadowedUpdate).empty());
}

TEST_F(LintTest, UpdateRaceForNonCommutingPair) {
  Program program;
  program.AddInsert("x", Xp("a", symbols_), Content("<b/>"));
  program.AddInsert("x", Xp("a/b", symbols_), Content("<c/>"));  // enabled by 0
  const Linter linter;
  const LintResult result = linter.Lint(program);
  const auto races = ByRule(result, LintRule::kUpdateRace);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0]->statements, (std::vector<size_t>{0, 1}));
  // The pair must also be ordered by the partitioner.
  EXPECT_EQ(result.partition.batches.size(), 2u);
}

TEST_F(LintTest, NoUpdateRaceForCertifiedPair) {
  Program program;
  program.AddInsert("x", Xp("a/x", symbols_), Content("<m/>"));
  program.AddInsert("x", Xp("a/y", symbols_), Content("<n/>"));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  EXPECT_TRUE(ByRule(result, LintRule::kUpdateRace).empty());
  EXPECT_EQ(result.partition.width, 2u);
}

TEST_F(LintTest, DtdViolationForForbiddenChild) {
  Result<Dtd> dtd = Dtd::Parse("allow book : title author\n", symbols_);
  ASSERT_TRUE(dtd.ok());
  LintOptions options;
  options.dtd = &*dtd;
  Program program;
  program.AddInsert("x", Xp("catalog/book", symbols_), Content("<price/>"));
  const Linter linter(options);
  const LintResult result = linter.Lint(program);
  const auto violations = ByRule(result, LintRule::kDtdViolation);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0]->severity, LintSeverity::kError);
  EXPECT_TRUE(result.HasErrors());
}

TEST_F(LintTest, DtdViolationForMissingRequiredChild) {
  Result<Dtd> dtd = Dtd::Parse("require book : title\n", symbols_);
  ASSERT_TRUE(dtd.ok());
  LintOptions options;
  options.dtd = &*dtd;
  Program program;
  program.AddInsert("x", Xp("catalog", symbols_),
                    Content("<book><author/></book>"));
  const Linter linter(options);
  const LintResult result = linter.Lint(program);
  EXPECT_EQ(ByRule(result, LintRule::kDtdViolation).size(), 1u);
}

TEST_F(LintTest, DtdConformingInsertIsClean) {
  Result<Dtd> dtd =
      Dtd::Parse("allow book : title author\nrequire book : title\n",
                 symbols_);
  ASSERT_TRUE(dtd.ok());
  LintOptions options;
  options.dtd = &*dtd;
  Program program;
  program.AddInsert("x", Xp("catalog", symbols_),
                    Content("<book><title/></book>"));
  const Linter linter(options);
  const LintResult result = linter.Lint(program);
  EXPECT_TRUE(ByRule(result, LintRule::kDtdViolation).empty());
}

TEST_F(LintTest, MalformedInsertReported) {
  Program program;
  program.AddInsert("x", Xp("a", symbols_), nullptr);
  const Linter linter;
  const LintResult result = linter.Lint(program);
  const auto malformed = ByRule(result, LintRule::kMalformedUpdate);
  ASSERT_EQ(malformed.size(), 1u);
  EXPECT_EQ(malformed[0]->severity, LintSeverity::kError);
}

/// The soundness satellite: force kUnknown via a bounded-search budget
/// below the paper bound and assert that (a) the truncation is surfaced
/// and (b) no unsafe diagnostic or fix-it is derived from the pair.
TEST_F(LintTest, TruncatedVerdictIsSurfacedAndTreatedAsDependence) {
  // Branching read a[zz]/b (output = the b child) against an insert of
  // <c/> at the root a: under tree semantics a sibling insert never
  // changes the selected b subtrees, but proving that needs the bounded
  // search (the mainline a/b finds no witness to extend). Paper bound =
  // |R|·|I|·(k+1) = 3·1·1 = 3; budget max_nodes=2 < 3 → kUnknown.
  Pattern read(symbols_);
  const PatternNodeId root = read.CreateRoot(symbols_->Intern("a"));
  read.AddChild(root, symbols_->Intern("zz"), Axis::kChild);
  read.SetOutput(read.AddChild(root, symbols_->Intern("b"), Axis::kChild));

  Program program;
  program.AddRead("y", "x", read);
  program.AddInsert("x", Xp("a", symbols_), Content("<c/>"));
  program.AddRead("z", "x", read);

  LintOptions options;
  options.batch.detector.search.max_nodes = 2;
  const Linter linter(options);
  const LintResult result = linter.Lint(program);

  // (a) surfaced, never dropped: both (read, insert) pairs truncate.
  const auto truncated = ByRule(result, LintRule::kTruncatedVerdict);
  ASSERT_EQ(truncated.size(), 2u);
  EXPECT_EQ(result.stats.unknown_verdicts, 2u);
  for (const Diagnostic* d : truncated) {
    EXPECT_EQ(d->severity, LintSeverity::kInfo);
    EXPECT_FALSE(d->fixit.has_value());
  }

  // (b) the identical reads straddle the Unknown insert — CSE must NOT
  // fire (an Unknown is a dependence), and the partitioner must keep all
  // three statements strictly ordered.
  EXPECT_TRUE(ByRule(result, LintRule::kRedundantRead).empty());
  ASSERT_EQ(result.partition.batches.size(), 3u);
  EXPECT_EQ(result.partition.width, 1u);
  // No removal/reorder fix-it exists for the truncated pairs.
  for (const Diagnostic& d : result.diagnostics) {
    if (!d.fixit.has_value()) continue;
    EXPECT_NE(d.fixit->kind, LintFixIt::Kind::kRemoveStatement);
    EXPECT_NE(d.fixit->kind, LintFixIt::Kind::kReorder);
  }
}

TEST_F(LintTest, RaisedBudgetResolvesTruncation) {
  // Same program with the budget raised to the paper bound (3): the
  // exhaustive search proves no-conflict, the truncation diagnostics
  // disappear, and CSE fires across the now-independent insert.
  Pattern read(symbols_);
  const PatternNodeId root = read.CreateRoot(symbols_->Intern("a"));
  read.AddChild(root, symbols_->Intern("zz"), Axis::kChild);
  read.SetOutput(read.AddChild(root, symbols_->Intern("b"), Axis::kChild));

  Program program;
  program.AddRead("y", "x", read);
  program.AddInsert("x", Xp("a", symbols_), Content("<c/>"));
  program.AddRead("z", "x", read);

  LintOptions options;
  options.batch.detector.search.max_nodes = 3;
  const Linter linter(options);
  const LintResult result = linter.Lint(program);
  EXPECT_TRUE(ByRule(result, LintRule::kTruncatedVerdict).empty());
  EXPECT_EQ(ByRule(result, LintRule::kRedundantRead).size(), 1u);
}

TEST_F(LintTest, PartitionIsAPartitionAndRespectsEdges) {
  Program program;
  program.AddRead("r0", "x", Xp("a//b", symbols_));
  program.AddInsert("x", Xp("a/b", symbols_), Content("<c/>"));  // conflicts
  program.AddRead("r1", "y", Xp("a/b", symbols_));   // other variable
  program.AddRead("r0", "y", Xp("a/c", symbols_));   // WAW with stmt 0
  const Linter linter;
  const LintResult result = linter.Lint(program);

  std::set<size_t> seen;
  for (const auto& batch : result.partition.batches) {
    EXPECT_FALSE(batch.empty());
    for (size_t s : batch) EXPECT_TRUE(seen.insert(s).second);
  }
  EXPECT_EQ(seen.size(), program.size());

  auto level_of = [&](size_t s) {
    for (size_t l = 0; l < result.partition.batches.size(); ++l) {
      const auto& batch = result.partition.batches[l];
      if (std::find(batch.begin(), batch.end(), s) != batch.end()) return l;
    }
    return size_t{SIZE_MAX};
  };
  // Conflicting pair 0→1 and the r0 write-after-write 0→3 span batches.
  EXPECT_LT(level_of(0), level_of(1));
  EXPECT_LT(level_of(0), level_of(3));
  // Statement 2 (independent variable) rides in the first batch.
  EXPECT_EQ(level_of(2), 0u);
}

TEST_F(LintTest, ResultVarWawNeverReordersFinalWrite) {
  // Two reads into r0 on *different* tree variables: the dependence
  // analyzer sees no edge, but swapping them changes r0's final value.
  Program program;
  program.AddRead("r0", "x", Xp("a/b", symbols_));
  program.AddRead("r0", "y", Xp("a/c", symbols_));
  const Linter linter;
  const LintResult result = linter.Lint(program);
  ASSERT_EQ(result.partition.batches.size(), 2u);
  EXPECT_EQ(result.partition.batches[0], (std::vector<size_t>{0}));
  EXPECT_EQ(result.partition.batches[1], (std::vector<size_t>{1}));
}

TEST_F(LintTest, LintIsDeterministicAcrossThreadCounts) {
  Program program;
  program.AddRead("y", "x", Xp("a//b[.//c]", symbols_));
  program.AddInsert("x", Xp("a/b", symbols_), Content("<c/>"));
  program.AddDelete("x", Xp("a//c", symbols_));
  program.AddRead("z", "x", Xp("a//b[.//c]", symbols_));

  LintOptions one;
  one.batch.num_threads = 1;
  one.batch.detector.search.max_nodes = 4;
  LintOptions eight;
  eight.batch.num_threads = 8;
  eight.batch.detector.search.max_nodes = 4;
  const LintResult r1 = Linter(one).Lint(program);
  const LintResult r8 = Linter(eight).Lint(program);
  EXPECT_EQ(RenderLintJson(program, r1), RenderLintJson(program, r8));
}

TEST_F(LintTest, ApplyFixItRejectsMismatches) {
  Program program;
  program.AddRead("y", "x", Xp("a/b", symbols_));
  program.AddRead("z", "x", Xp("a/b", symbols_));

  LintFixIt bad_remove;
  bad_remove.kind = LintFixIt::Kind::kRemoveStatement;
  bad_remove.statement = 7;
  EXPECT_FALSE(ApplyLintFixIt(program, bad_remove).ok());

  LintFixIt bad_alias;
  bad_alias.kind = LintFixIt::Kind::kAliasRead;
  bad_alias.statement = 0;
  bad_alias.alias_of = 1;  // alias must point backwards
  EXPECT_FALSE(ApplyLintFixIt(program, bad_alias).ok());

  LintFixIt bad_schedule;
  bad_schedule.kind = LintFixIt::Kind::kReorder;
  bad_schedule.schedule = {0, 0};  // not a permutation
  EXPECT_FALSE(ApplyLintFixIt(program, bad_schedule).ok());

  // Removing a statement that another read aliases must fail.
  Program aliased = program;
  aliased.mutable_statements()[1].alias_of = 0;
  LintFixIt remove_source;
  remove_source.kind = LintFixIt::Kind::kRemoveStatement;
  remove_source.statement = 0;
  EXPECT_FALSE(ApplyLintFixIt(aliased, remove_source).ok());
}

TEST_F(LintTest, RemoveFixItShiftsAliases) {
  Program program;
  program.AddRead("y", "x", Xp("a/b", symbols_));  // dead
  program.AddRead("y", "x", Xp("a/c", symbols_));
  program.AddRead("z", "x", Xp("a/c", symbols_));
  program.mutable_statements()[2].alias_of = 1;

  LintFixIt remove;
  remove.kind = LintFixIt::Kind::kRemoveStatement;
  remove.statement = 0;
  Result<Program> fixed = ApplyLintFixIt(program, remove);
  ASSERT_TRUE(fixed.ok());
  ASSERT_EQ(fixed->size(), 2u);
  EXPECT_EQ(fixed->statements()[1].alias_of, std::optional<size_t>(0));
}

TEST_F(LintTest, RuleTableIsCompleteAndStable) {
  for (LintRule rule : AllLintRules()) {
    const LintRuleInfo& info = GetLintRuleInfo(rule);
    EXPECT_FALSE(info.id.empty());
    EXPECT_FALSE(info.description.empty());
  }
  EXPECT_EQ(GetLintRuleInfo(LintRule::kDeadRead).id, "dead-read");
  EXPECT_EQ(GetLintRuleInfo(LintRule::kTruncatedVerdict).severity,
            LintSeverity::kInfo);
}

TEST_F(LintTest, ParseProgramRoundTripsAndTracksLines) {
  const char* source =
      "# demo\n"
      "\n"
      "y = read $x//book[.//quantity]\n"
      "insert $x/catalog, <book><title/></book>\n"
      "delete $x//book\n";
  Result<ParsedProgram> parsed = ParseProgram(source, symbols_);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->program.size(), 3u);
  EXPECT_EQ(parsed->lines, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(parsed->program.statements()[0].kind, Statement::Kind::kRead);
  EXPECT_EQ(parsed->program.statements()[0].result_var, "y");
  EXPECT_EQ(parsed->program.statements()[0].target_var, "x");
  EXPECT_EQ(parsed->program.statements()[1].kind, Statement::Kind::kInsert);
  ASSERT_NE(parsed->program.statements()[1].content, nullptr);
  EXPECT_EQ(parsed->program.statements()[2].kind, Statement::Kind::kDelete);

  // ToString output (with index prefixes) parses back to the same shape.
  Result<ParsedProgram> again =
      ParseProgram(parsed->program.ToString(), symbols_);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->program.ToString(), parsed->program.ToString());
}

TEST_F(LintTest, ParseProgramRejectsBadInput) {
  EXPECT_FALSE(ParseProgram("frobnicate $x/a\n", symbols_).ok());
  EXPECT_FALSE(ParseProgram("y = read x/a\n", symbols_).ok());     // no '$'
  EXPECT_FALSE(ParseProgram("insert $x/a\n", symbols_).ok());      // no content
  EXPECT_FALSE(ParseProgram("delete $x\n", symbols_).ok());        // no xpath
  // Root-selecting deletes are rejected at parse time.
  EXPECT_FALSE(ParseProgram("delete $x/a\n", symbols_).ok());
  EXPECT_TRUE(ParseProgram("delete $x/a/b\n", symbols_).ok());
}

TEST_F(LintTest, RenderersMentionRulesAndLocations) {
  Program program;
  program.AddRead("y", "x", Xp("a/b", symbols_));
  program.AddRead("y", "x", Xp("a/c", symbols_));
  const Linter linter;
  const LintResult result = linter.Lint(program);

  const std::string text = RenderLintText(program, result);
  EXPECT_NE(text.find("dead-read"), std::string::npos);
  EXPECT_NE(text.find("program.xup:1:"), std::string::npos);
  EXPECT_NE(text.find("summary:"), std::string::npos);

  const std::string json = RenderLintJson(program, result);
  EXPECT_NE(json.find("\"rule\":\"dead-read\""), std::string::npos);
  EXPECT_NE(json.find("\"partition\""), std::string::npos);

  const std::string sarif = RenderLintSarif(program, result);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"dead-read\""), std::string::npos);

  // Custom line table shifts reported locations.
  const std::vector<int> lines = {10, 20};
  LintRenderOptions render;
  render.artifact_uri = "demo.xup";
  render.lines = &lines;
  const std::string mapped = RenderLintText(program, result, render);
  EXPECT_NE(mapped.find("demo.xup:10:"), std::string::npos);
}

}  // namespace
}  // namespace xmlup
