#include "match/matching.h"

#include <vector>

#include "common/random.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "match/dp_matcher.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

class MatchingTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

/// Checks the Definition 7 conditions on a concrete path tree: the deepest
/// node is selected by l1, and (strong) the deepest node is also selected
/// by l2 / (weak) l2 selects some node of the path.
void ExpectWitnessValid(const ClassWord& word, const Pattern& l1,
                        const Pattern& l2, bool weak,
                        const std::shared_ptr<SymbolTable>& symbols) {
  ASSERT_FALSE(word.empty());
  Tree path = WordToPathTree(word, symbols, symbols->Fresh("fill"));
  NodeId deepest = path.root();
  while (path.first_child(deepest) != kNullNode) {
    deepest = path.first_child(deepest);
  }
  const std::vector<NodeId> r1 = Evaluate(l1, path);
  const std::vector<NodeId> r2 = Evaluate(l2, path);
  EXPECT_TRUE(std::binary_search(r1.begin(), r1.end(), deepest))
      << "l1 must select the deepest node of its witness path";
  if (weak) {
    EXPECT_FALSE(r2.empty()) << "l2 must select some node on the path";
  } else {
    EXPECT_TRUE(std::binary_search(r2.begin(), r2.end(), deepest))
        << "strong match: l2 must select the same (deepest) node";
  }
}

TEST_F(MatchingTest, IdenticalPatternsMatchStrongly) {
  Pattern l = Xp("a/b//c", symbols_);
  const MatchResult m = MatchStrongly(l, l);
  EXPECT_TRUE(m.matches);
  ExpectWitnessValid(m.witness_word, l, l, false, symbols_);
}

TEST_F(MatchingTest, DifferentLeavesDontMatchStrongly) {
  EXPECT_FALSE(
      MatchStrongly(Xp("a/b", symbols_), Xp("a/c", symbols_)).matches);
}

TEST_F(MatchingTest, WildcardBridgesLabels) {
  EXPECT_TRUE(MatchStrongly(Xp("a/*", symbols_), Xp("a/c", symbols_)).matches);
  EXPECT_TRUE(MatchStrongly(Xp("*/*", symbols_), Xp("a/c", symbols_)).matches);
}

TEST_F(MatchingTest, DescendantAbsorbsIntermediateNodes) {
  // a//c vs a/b/c: the word a.b.c satisfies both.
  const MatchResult m =
      MatchStrongly(Xp("a//c", symbols_), Xp("a/b/c", symbols_));
  EXPECT_TRUE(m.matches);
  EXPECT_EQ(m.witness_word.size(), 3u);
}

TEST_F(MatchingTest, ChildEdgeLengthsMustAgree) {
  // a/c (length 2) vs a/b/c (length 3): no common path.
  EXPECT_FALSE(
      MatchStrongly(Xp("a/c", symbols_), Xp("a/b/c", symbols_)).matches);
}

TEST_F(MatchingTest, RootLabelsMustAgree) {
  EXPECT_FALSE(MatchStrongly(Xp("a//x", symbols_), Xp("b//x", symbols_))
                   .matches);
  EXPECT_FALSE(MatchWeakly(Xp("a//x", symbols_), Xp("b", symbols_)).matches);
}

TEST_F(MatchingTest, WeakMatchAllowsDeeperOutput) {
  // l1 = a/b/c reaches below l2 = a/b.
  EXPECT_TRUE(MatchWeakly(Xp("a/b/c", symbols_), Xp("a/b", symbols_)).matches);
  // Strong fails: outputs cannot coincide.
  EXPECT_FALSE(
      MatchStrongly(Xp("a/b/c", symbols_), Xp("a/b", symbols_)).matches);
  // Asymmetry: l1's output must be the deeper one.
  EXPECT_FALSE(MatchWeakly(Xp("a/b", symbols_), Xp("a/b/c", symbols_))
                   .matches);
}

TEST_F(MatchingTest, WeakIncludesStrong) {
  Pattern l1 = Xp("a//b", symbols_);
  Pattern l2 = Xp("a/b", symbols_);
  EXPECT_TRUE(MatchStrongly(l1, l2).matches);
  EXPECT_TRUE(MatchWeakly(l1, l2).matches);
}

TEST_F(MatchingTest, SingleNodePatterns) {
  EXPECT_TRUE(MatchStrongly(Xp("a", symbols_), Xp("a", symbols_)).matches);
  EXPECT_TRUE(MatchStrongly(Xp("a", symbols_), Xp("*", symbols_)).matches);
  EXPECT_FALSE(MatchStrongly(Xp("a", symbols_), Xp("b", symbols_)).matches);
  EXPECT_TRUE(MatchWeakly(Xp("a//b", symbols_), Xp("a", symbols_)).matches);
}

TEST_F(MatchingTest, LinearPatternToRegexShape) {
  const Regex r = LinearPatternToRegex(Xp("a//b/c", symbols_));
  EXPECT_EQ(r.ToString(*symbols_), "a.((.))*.b.c");
}

TEST_F(MatchingTest, DpMatcherAgreesOnHandCases) {
  struct Case {
    const char* l1;
    const char* l2;
  };
  const Case cases[] = {
      {"a/b", "a/b"},     {"a//b", "a/x/b"}, {"a/*", "a/c"},
      {"a/b/c", "a/b"},   {"a/c", "a/b/c"},  {"*//*", "a/b/c"},
      {"a//b//c", "a/b"}, {"a", "b"},        {"x//y", "x//z"},
  };
  for (const Case& c : cases) {
    Pattern l1 = Xp(c.l1, symbols_);
    Pattern l2 = Xp(c.l2, symbols_);
    EXPECT_EQ(MatchStrongly(l1, l2, MatcherKind::kNfa).matches,
              MatchStrongly(l1, l2, MatcherKind::kDp).matches)
        << c.l1 << " strong " << c.l2;
    EXPECT_EQ(MatchWeakly(l1, l2, MatcherKind::kNfa).matches,
              MatchWeakly(l1, l2, MatcherKind::kDp).matches)
        << c.l1 << " weak " << c.l2;
  }
}

/// Ground truth by brute force: enumerate all label words up to a length
/// covering the shortest possible witness and check Definition 7 directly
/// on path trees.
bool BruteMatch(const Pattern& l1, const Pattern& l2, bool weak,
                const std::vector<Label>& alphabet,
                const std::shared_ptr<SymbolTable>& symbols) {
  const size_t max_len = l1.size() + l2.size() + 1;
  std::vector<Label> word;
  // Iterative odometer over words of each length.
  for (size_t len = 1; len <= max_len; ++len) {
    std::vector<size_t> idx(len, 0);
    for (;;) {
      word.clear();
      for (size_t i = 0; i < len; ++i) word.push_back(alphabet[idx[i]]);
      Tree path = BuildPathTree(symbols, word);
      NodeId deepest = path.root();
      while (path.first_child(deepest) != kNullNode) {
        deepest = path.first_child(deepest);
      }
      const std::vector<NodeId> r1 = Evaluate(l1, path);
      if (std::binary_search(r1.begin(), r1.end(), deepest)) {
        const std::vector<NodeId> r2 = Evaluate(l2, path);
        const bool ok =
            weak ? !r2.empty()
                 : std::binary_search(r2.begin(), r2.end(), deepest);
        if (ok) return true;
      }
      size_t i = 0;
      while (i < len && idx[i] + 1 == alphabet.size()) idx[i++] = 0;
      if (i == len) break;
      ++idx[i];
    }
  }
  return false;
}

class MatchingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatchingPropertyTest, NfaDpAndBruteForceAgree) {
  auto symbols = NewSymbols();
  Rng rng(4000 + GetParam());
  PatternGenOptions options;
  options.size = 3;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);
  // Brute-force alphabet: pattern labels plus one symbol they don't use.
  std::vector<Label> brute_alphabet = options.alphabet;
  brute_alphabet.push_back(symbols->Intern("other"));

  for (int iter = 0; iter < 30; ++iter) {
    const Pattern l1 = gen.GenerateLinear(&rng);
    const Pattern l2 = gen.GenerateLinear(&rng);
    for (bool weak : {false, true}) {
      const MatchResult nfa = weak ? MatchWeakly(l1, l2, MatcherKind::kNfa)
                                   : MatchStrongly(l1, l2, MatcherKind::kNfa);
      const MatchResult dp = weak ? MatchWeakly(l1, l2, MatcherKind::kDp)
                                  : MatchStrongly(l1, l2, MatcherKind::kDp);
      const bool brute = BruteMatch(l1, l2, weak, brute_alphabet, symbols);
      EXPECT_EQ(nfa.matches, dp.matches) << "seed=" << GetParam();
      EXPECT_EQ(nfa.matches, brute) << "seed=" << GetParam();
      if (nfa.matches) {
        ExpectWitnessValid(nfa.witness_word, l1, l2, weak, symbols);
        ExpectWitnessValid(dp.witness_word, l1, l2, weak, symbols);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatchingPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace xmlup
