// The merge executor's correctness harness (the tinyqv ris-test idiom):
// generate random concurrent schedules — a seed tree plus N per-session
// update streams — run the conflict-aware merge, and compare the merged
// tree's canonical code against a sequential reference execution of the
// same admitted ops in serial order. Every schedule additionally runs at
// 1 and 8 evaluation threads and must produce byte-identical reports and
// merged trees (the executor's determinism contract).
//
// Coverage: >= 200 schedules across session counts {2, 4, 8}, two
// conflict regimes (a wide alphabet with few wildcards barely collides; a
// 2-letter alphabet with frequent wildcards and descendant edges collides
// constantly), and both conflict policies.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "merge/merge_executor.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "workload/tree_generator.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;

struct Regime {
  const char* name;
  size_t alphabet = 8;
  double wildcard_prob = 0.05;
  double descendant_prob = 0.2;
};

constexpr Regime kLowConflict = {"low", 8, 0.05, 0.2};
constexpr Regime kHighConflict = {"high", 2, 0.3, 0.5};

/// The harness runs thousands of certificate calls; the default bounded-
/// search budget (2M trees per inconclusive pair) would dominate the
/// suite's runtime without changing what it tests. Capping the budget is
/// sound — pairs the search can no longer settle come back kUnknown and
/// the executor serializes them, which the oracle covers anyway — and
/// witness construction is verdict-irrelevant.
EngineOptions FastCertOptions() {
  EngineOptions options;
  options.batch.detector.search.max_trees = 2'000;
  options.batch.detector.build_witness = false;
  return options;
}

class MergeOracleTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
  Engine engine_{symbols_, FastCertOptions()};

  UpdateOp RandomOp(const RandomPatternGenerator& patterns,
                    const RandomTreeGenerator& content, Rng* rng) {
    if (rng->NextBool(0.5)) {
      return UpdateOp::MakeInsert(
          patterns.GenerateBranching(rng),
          std::make_shared<const Tree>(content.Generate(rng)));
    }
    Result<UpdateOp> del =
        UpdateOp::MakeDelete(patterns.GenerateBranchingNonRootOutput(rng));
    EXPECT_TRUE(del.ok());  // non-root output by construction
    return *std::move(del);
  }

  /// Runs `schedules` random schedules with `num_sessions` streams under
  /// `regime`, checking every schedule against the serial oracle and the
  /// 1-vs-8-thread determinism contract.
  void RunSweep(const Regime& regime, size_t num_sessions, size_t schedules,
                ConflictPolicy policy, uint64_t seed) {
    const std::vector<Label> alphabet =
        RandomTreeGenerator::MakeAlphabet(symbols_.get(), regime.alphabet);
    TreeGenOptions tree_options;
    tree_options.target_size = 10;
    tree_options.alphabet = alphabet;
    TreeGenOptions content_options;
    content_options.target_size = 3;
    content_options.alphabet = alphabet;
    PatternGenOptions pattern_options;
    pattern_options.size = 3;
    pattern_options.wildcard_prob = regime.wildcard_prob;
    pattern_options.descendant_prob = regime.descendant_prob;
    pattern_options.alphabet = alphabet;
    const RandomTreeGenerator trees(symbols_, tree_options);
    const RandomTreeGenerator content(symbols_, content_options);
    const RandomPatternGenerator patterns(symbols_, pattern_options);

    MergeOptions one;
    one.num_threads = 1;
    one.policy = policy;
    MergeOptions eight;
    eight.num_threads = 8;
    eight.policy = policy;
    const MergeExecutor ex1(&engine_, one);
    const MergeExecutor ex8(&engine_, eight);

    Rng rng(seed);
    size_t serialized_total = 0;
    for (size_t schedule = 0; schedule < schedules; ++schedule) {
      SCOPED_TRACE(std::string(regime.name) + " sessions=" +
                   std::to_string(num_sessions) +
                   " schedule=" + std::to_string(schedule));
      const Tree seed_tree = trees.Generate(&rng);
      std::vector<std::vector<UpdateOp>> sessions(num_sessions);
      for (auto& stream : sessions) {
        const size_t ops = 2 + rng.NextBounded(2);  // 2-3 ops per session
        for (size_t k = 0; k < ops; ++k) {
          stream.push_back(RandomOp(patterns, content, &rng));
        }
      }

      Tree merged1 = CopyTree(seed_tree);
      Result<MergeReport> r1 = ex1.Merge(&merged1, sessions);
      ASSERT_TRUE(r1.ok()) << r1.status();
      Tree merged8 = CopyTree(seed_tree);
      Result<MergeReport> r8 = ex8.Merge(&merged8, sessions);
      ASSERT_TRUE(r8.ok()) << r8.status();

      // Determinism: reports and trees byte-identical across thread counts.
      ASSERT_EQ(WriteJson(r1->ToJson()), WriteJson(r8->ToJson()));
      ASSERT_TRUE(OrderedEqual(merged1, merged8));

      // The serial oracle: the same admitted ops applied one at a time in
      // (session, index) order must give a value-equal document.
      Tree reference = CopyTree(seed_tree);
      ApplySerialReference(&reference, sessions, *r1);
      ASSERT_EQ(CanonicalCode(merged1), CanonicalCode(reference));

      ASSERT_EQ(r1->accepted + r1->serialized + r1->rejected, r1->ops_total);
      ASSERT_EQ(r1->cert_errors, 0u);
      serialized_total += r1->serialized + r1->rejected;
    }
    if (regime.alphabet <= 2) {
      // The high-conflict regime must actually exercise the conflict
      // paths; an all-accepted sweep would be testing nothing.
      EXPECT_GT(serialized_total, 0u);
    }
  }
};

TEST_F(MergeOracleTest, LowConflictSessions2) {
  RunSweep(kLowConflict, 2, 40, ConflictPolicy::kSerialize, 101);
}
TEST_F(MergeOracleTest, LowConflictSessions4) {
  RunSweep(kLowConflict, 4, 25, ConflictPolicy::kSerialize, 102);
}
TEST_F(MergeOracleTest, LowConflictSessions8) {
  RunSweep(kLowConflict, 8, 10, ConflictPolicy::kSerialize, 103);
}
TEST_F(MergeOracleTest, HighConflictSessions2) {
  RunSweep(kHighConflict, 2, 40, ConflictPolicy::kSerialize, 201);
}
TEST_F(MergeOracleTest, HighConflictSessions4) {
  RunSweep(kHighConflict, 4, 25, ConflictPolicy::kSerialize, 202);
}
TEST_F(MergeOracleTest, HighConflictSessions8) {
  RunSweep(kHighConflict, 8, 10, ConflictPolicy::kSerialize, 203);
}
TEST_F(MergeOracleTest, RejectPolicyLowConflict) {
  RunSweep(kLowConflict, 4, 20, ConflictPolicy::kReject, 301);
}
TEST_F(MergeOracleTest, RejectPolicyHighConflict) {
  RunSweep(kHighConflict, 2, 20, ConflictPolicy::kReject, 302);
  RunSweep(kHighConflict, 4, 15, ConflictPolicy::kReject, 303);
}

}  // namespace
}  // namespace xmlup
