#include "merge/merge_executor.h"

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class MergeTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
  Engine engine_{symbols_};

  UpdateOp Ins(const char* pattern, const char* x) {
    return UpdateOp::MakeInsert(
        Xp(pattern, symbols_),
        std::make_shared<const Tree>(Xml(x, symbols_)));
  }
  UpdateOp Del(const char* pattern) {
    return std::move(UpdateOp::MakeDelete(Xp(pattern, symbols_)).value());
  }

  /// Merges `sessions` into a fresh parse of `seed` and checks the merged
  /// tree against the serial reference; returns the report.
  MergeReport MergeChecked(const char* seed,
                           const std::vector<std::vector<UpdateOp>>& sessions,
                           MergeOptions options = {}) {
    const MergeExecutor executor(&engine_, options);
    Tree merged = Xml(seed, symbols_);
    Result<MergeReport> report = executor.Merge(&merged, sessions);
    EXPECT_TRUE(report.ok()) << report.status();
    Tree reference = Xml(seed, symbols_);
    ApplySerialReference(&reference, sessions, *report);
    EXPECT_EQ(CanonicalCode(merged), CanonicalCode(reference));
    EXPECT_EQ(report->accepted + report->serialized + report->rejected,
              report->ops_total);
    return *std::move(report);
  }
};

TEST_F(MergeTest, DisjointSessionsAllAccepted) {
  std::vector<std::vector<UpdateOp>> sessions = {
      {Ins("shop/a", "<m/>")},
      {Ins("shop/b", "<n/>")},
  };
  const MergeReport report =
      MergeChecked("<shop><a/><b/></shop>", sessions);
  EXPECT_EQ(report.ops_total, 2u);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.serialized, 0u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.levels, 1u);
  EXPECT_EQ(report.width, 2u);
  EXPECT_EQ(report.pairs_checked, 1u);
  EXPECT_EQ(report.pairs_certified, 1u);
  for (const MergeOpReport& op : report.ops) {
    EXPECT_EQ(op.outcome, MergeOutcome::kAccepted);
    EXPECT_EQ(op.level, 0u);
    EXPECT_TRUE(op.detail.empty());
  }
}

TEST_F(MergeTest, CrossSessionConflictSerializesInSessionOrder) {
  // Session 0 inserts a fresh b under shop; session 1 inserts under shop/b
  // — its selected set depends on whether session 0 ran first. The
  // certificate cannot clear the pair, so both ops serialize and span two
  // levels, and the merged tree must equal session 0 before session 1.
  std::vector<std::vector<UpdateOp>> sessions = {
      {Ins("shop", "<b/>")},
      {Ins("shop/b", "<c/>")},
  };
  const MergeReport report = MergeChecked("<shop><b/></shop>", sessions);
  EXPECT_EQ(report.ops_total, 2u);
  EXPECT_EQ(report.accepted, 0u);
  EXPECT_EQ(report.serialized, 2u);
  EXPECT_EQ(report.levels, 2u);
  EXPECT_EQ(report.width, 1u);
  EXPECT_EQ(report.ops[0].level, 0u);
  EXPECT_EQ(report.ops[1].level, 1u);
  EXPECT_FALSE(report.ops[0].detail.empty());
  EXPECT_FALSE(report.ops[1].detail.empty());
}

TEST_F(MergeTest, RejectPolicyDropsLaterConflictingOp) {
  std::vector<std::vector<UpdateOp>> sessions = {
      {Ins("shop", "<b/>")},
      {Ins("shop/b", "<c/>")},
  };
  MergeOptions options;
  options.policy = ConflictPolicy::kReject;
  const MergeReport report =
      MergeChecked("<shop><b/></shop>", sessions, options);
  EXPECT_EQ(report.ops_total, 2u);
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_EQ(report.serialized, 0u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.ops[0].outcome, MergeOutcome::kAccepted);
  EXPECT_EQ(report.ops[1].outcome, MergeOutcome::kRejected);
  // The survivor runs conflict-free, so the whole merge is one level.
  EXPECT_EQ(report.levels, 1u);
}

TEST_F(MergeTest, SameSessionConflictKeepsProgramOrderButStaysAccepted) {
  // Both ops are in one session: program order pins them to two levels,
  // but there is no cross-session conflict, so neither is "serialized".
  std::vector<std::vector<UpdateOp>> sessions = {
      {Ins("shop", "<b/>"), Ins("shop/b", "<c/>")},
  };
  const MergeReport report = MergeChecked("<shop><b/></shop>", sessions);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.serialized, 0u);
  EXPECT_EQ(report.levels, 2u);
}

TEST_F(MergeTest, EmptyMergeIsANoOp) {
  const MergeExecutor executor(&engine_);
  Tree tree = Xml("<shop><a/></shop>", symbols_);
  const std::string before = CanonicalCode(tree);
  Result<MergeReport> report = executor.Merge(&tree, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ops_total, 0u);
  EXPECT_EQ(report->levels, 0u);
  EXPECT_EQ(CanonicalCode(tree), before);
}

TEST_F(MergeTest, ForeignSymbolTableRejected) {
  const MergeExecutor executor(&engine_);
  auto other = NewSymbols();
  Tree tree = Xml("<shop/>", other);
  Result<MergeReport> report = executor.Merge(&tree, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MergeTest, ThreadCountChangesNothing) {
  // The executor's determinism contract: schedule, report and merged tree
  // are bit-identical at 1 and 8 threads (threads only parallelize the
  // read-only evaluation phase).
  std::vector<std::vector<UpdateOp>> sessions = {
      {Ins("shop/a", "<m/>"), Del("shop/a/m")},
      {Ins("shop", "<b/>"), Ins("shop/b", "<c/>")},
      {Ins("shop/c", "<n/>")},
  };
  const char* seed = "<shop><a><m/></a><b/><c/></shop>";
  MergeOptions one;
  one.num_threads = 1;
  MergeOptions eight;
  eight.num_threads = 8;

  const MergeExecutor ex1(&engine_, one);
  const MergeExecutor ex8(&engine_, eight);
  Tree t1 = Xml(seed, symbols_);
  Tree t8 = Xml(seed, symbols_);
  Result<MergeReport> r1 = ex1.Merge(&t1, sessions);
  Result<MergeReport> r8 = ex8.Merge(&t8, sessions);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r8.ok());
  EXPECT_EQ(WriteJson(r1->ToJson()), WriteJson(r8->ToJson()));
  EXPECT_TRUE(OrderedEqual(t1, t8));
}

TEST_F(MergeTest, ReportJsonShape) {
  std::vector<std::vector<UpdateOp>> sessions = {
      {Ins("shop/a", "<m/>")},
      {Ins("shop/b", "<n/>")},
  };
  const MergeReport report = MergeChecked("<shop><a/><b/></shop>", sessions);
  const JsonValue json = report.ToJson();
  for (const char* key :
       {"ops_total", "accepted", "serialized", "rejected", "levels", "width",
        "pairs_checked", "pairs_certified", "cert_errors", "ops"}) {
    EXPECT_NE(json.Find(key), nullptr) << key;
  }
  ASSERT_NE(json.Find("ops"), nullptr);
  EXPECT_EQ(json.Find("ops")->AsArray().size(), report.ops_total);
  const JsonValue& first = json.Find("ops")->AsArray()[0];
  EXPECT_NE(first.Find("session"), nullptr);
  EXPECT_NE(first.Find("index"), nullptr);
  EXPECT_NE(first.Find("outcome"), nullptr);
  EXPECT_NE(first.Find("level"), nullptr);
}

TEST_F(MergeTest, CountersAdvance) {
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Default().Snapshot();
  std::vector<std::vector<UpdateOp>> sessions = {
      {Ins("shop/a", "<m/>")},
      {Ins("shop/b", "<n/>")},
  };
  MergeChecked("<shop><a/><b/></shop>", sessions);
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Default().Snapshot().DiffSince(before);
  EXPECT_EQ(delta.counters.at("merge.merges"), 1u);
  EXPECT_EQ(delta.counters.at("merge.ops"), 2u);
  EXPECT_EQ(delta.counters.at("merge.pairs_checked"), 1u);
}

}  // namespace
}  // namespace xmlup
