#include "conflict/minimize.h"

#include "common/random.h"
#include "conflict/bounded_search.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "pattern/pattern_writer.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

class MinimizeTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(MinimizeTest, RemoveLeafDropsExactlyOneNode) {
  Pattern p = Xp("a[b][c]/d", symbols_);
  // Find the b leaf.
  PatternNodeId b = kNullPatternNode;
  for (PatternNodeId n : p.PreOrder()) {
    if (p.LabelName(n) == "b") b = n;
  }
  ASSERT_NE(b, kNullPatternNode);
  const Pattern reduced = RemoveLeaf(p, b);
  EXPECT_EQ(reduced.size(), p.size() - 1);
  EXPECT_EQ(ToXPathString(reduced), "a[c]/d");
}

TEST_F(MinimizeTest, DuplicatePredicateRemoved) {
  // a[b][b]/c: one of the two identical predicates is redundant.
  const Pattern minimized = MinimizePattern(Xp("a[b][b]/c", symbols_));
  EXPECT_EQ(minimized.size(), 3u);
  EXPECT_EQ(ToXPathString(minimized), "a[b]/c");
}

TEST_F(MinimizeTest, WildcardSubsumedByConcretePredicate) {
  // a[*][b]: the wildcard predicate is implied by the b predicate.
  const Pattern minimized = MinimizePattern(Xp("a[*][b]", symbols_));
  EXPECT_EQ(ToXPathString(minimized), "a[b]");
}

TEST_F(MinimizeTest, DescendantPredicateSubsumedByChildPath) {
  // a[.//c][b/c]: having a c somewhere below is implied by having b/c.
  const Pattern minimized = MinimizePattern(Xp("a[.//c][b/c]", symbols_));
  EXPECT_EQ(minimized.size(), 3u);
  EXPECT_EQ(ToXPathString(minimized), "a[b/c]");
}

TEST_F(MinimizeTest, IndependentPredicatesKept) {
  const Pattern minimized = MinimizePattern(Xp("a[b][c]", symbols_));
  EXPECT_EQ(minimized.size(), 3u);
}

TEST_F(MinimizeTest, TrunkNeverRemoved) {
  const Pattern minimized = MinimizePattern(Xp("a/b/c", symbols_));
  EXPECT_EQ(minimized.size(), 3u);
}

TEST_F(MinimizeTest, AlreadyMinimalSingleNode) {
  const Pattern minimized = MinimizePattern(Xp("a", symbols_));
  EXPECT_EQ(minimized.size(), 1u);
}

TEST_F(MinimizeTest, HomomorphismRespectsOutput) {
  // a/b and a[b]: same tree shape, different output node — no
  // output-preserving homomorphism either way.
  EXPECT_FALSE(HasOutputPreservingHomomorphism(Xp("a/b", symbols_),
                                               Xp("a[b]", symbols_)));
  EXPECT_FALSE(HasOutputPreservingHomomorphism(Xp("a[b]", symbols_),
                                               Xp("a/b", symbols_)));
  EXPECT_TRUE(HasOutputPreservingHomomorphism(Xp("a/b", symbols_),
                                              Xp("a/b", symbols_)));
}

/// Property: minimization preserves the query — on every small tree, the
/// minimized pattern returns exactly the same node set.
class MinimizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MinimizePropertyTest, MinimizedPatternIsEquivalent) {
  auto symbols = NewSymbols();
  Rng rng(50000 + GetParam());
  PatternGenOptions options;
  options.size = 5;
  options.branch_prob = 0.6;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);

  std::vector<Label> alphabet = options.alphabet;
  alphabet.push_back(symbols->Fresh("z"));
  TreeEnumerator enumerator(symbols, alphabet, 5);

  for (int iter = 0; iter < 6; ++iter) {
    const Pattern p = gen.GenerateBranching(&rng);
    const Pattern minimized = MinimizePattern(p);
    EXPECT_LE(minimized.size(), p.size());
    EXPECT_TRUE(minimized.Validate().ok());
    bool all_equal = true;
    enumerator.Enumerate([&](const Tree& t) {
      if (Evaluate(p, t) != Evaluate(minimized, t)) {
        all_equal = false;
        return false;
      }
      return true;
    });
    EXPECT_TRUE(all_equal)
        << "minimization changed results; seed=" << GetParam()
        << "\noriginal:  " << ToXPathString(p)
        << "\nminimized: " << ToXPathString(minimized);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinimizePropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace xmlup
