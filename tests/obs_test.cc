#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace xmlup {
namespace obs {
namespace {

TEST(HistogramTest, BucketIndexIsBitWidth) {
  // Bucket 0 holds exactly 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // The tail bucket absorbs everything too wide for the table.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 60),
            Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketBoundsMatchIndexing) {
  // Every bucket's inclusive upper bound lands in that bucket, and the
  // next value lands in the next one.
  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    const uint64_t le = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(le), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(le + 1), i + 1) << "bucket " << i;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            UINT64_MAX);
}

TEST(HistogramTest, ObserveAccumulatesCountSumAndBuckets) {
  Histogram h;
  for (uint64_t v : {0, 1, 2, 3, 100}) h.Observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(7), 1u);  // 100 in [64, 127]
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(CounterTest, EightThreadsLoseNoIncrements) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.concurrent");
  Histogram& histogram = registry.GetHistogram("test.concurrent_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        histogram.Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(histogram.count(), uint64_t{kThreads} * kPerThread);
}

TEST(RegistryTest, SameNameReturnsSameMetricAndResetKeepsReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  registry.GetGauge("g").Set(-7);
  registry.Reset();
  EXPECT_EQ(a.value(), 0u);  // reference still valid, value zeroed
  EXPECT_EQ(registry.GetGauge("g").value(), 0);
  a.Increment();
  EXPECT_EQ(registry.Snapshot().counters.at("x"), 1u);
}

TEST(RegistryTest, SnapshotAndJsonRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Increment(5);
  registry.GetGauge("g.depth").Set(-2);
  Histogram& h = registry.GetHistogram("h.lat");
  h.Observe(0);
  h.Observe(5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c.one"), 5u);
  EXPECT_EQ(snapshot.gauges.at("g.depth"), -2);
  const auto& data = snapshot.histograms.at("h.lat");
  EXPECT_EQ(data.count, 2u);
  EXPECT_EQ(data.sum, 5u);
  // Sparse buckets: (le=0, 1 obs) and (le=7, 1 obs).
  ASSERT_EQ(data.buckets.size(), 2u);
  EXPECT_EQ(data.buckets[0], (std::pair<uint64_t, uint64_t>{0, 1}));
  EXPECT_EQ(data.buckets[1], (std::pair<uint64_t, uint64_t>{7, 1}));

  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"c.one\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.depth\":-2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.lat\":{\"count\":2,\"sum\":5,\"buckets\":"
                      "[[0,1],[7,1]]}"),
            std::string::npos)
      << json;
}

TEST(ScopedTimerTest, ObservesOnceOnDestruction) {
  Histogram h;
  { ScopedTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;  // disabled by default
  { TraceSpan span(recorder, "ignored"); }
  recorder.Record({"direct", 0, 1, 0, 0});
  recorder.MergeThreadEvents({{"merged", 0, 1, 0, 0}});
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.merge_count(), 0u);
}

TEST(TraceTest, SpanNestingDepthsAndExportRoundTrip) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  uint64_t now = 100;
  recorder.SetClockForTest([&now] { return now; });
  {
    TraceSpan outer(recorder, "outer");
    now += 10;
    {
      TraceSpan inner(recorder, "inner");
      now += 5;
    }
    {
      TraceSpan inner2(recorder, "inner");
      now += 7;
    }
    now += 3;
  }
  const std::vector<TraceEvent> events = recorder.Snapshot();
  // Spans close inner-first.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].start_us, 110u);
  EXPECT_EQ(events[0].dur_us, 5u);
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].dur_us, 7u);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].start_us, 100u);
  EXPECT_EQ(events[2].dur_us, 25u);
  EXPECT_EQ(events[2].depth, 0u);

  const std::string chrome = recorder.ToChromeTraceJson();
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(
      chrome.find("{\"name\":\"outer\",\"cat\":\"xmlup\",\"ph\":\"X\","
                  "\"ts\":100,\"dur\":25,\"pid\":1,"),
      std::string::npos)
      << chrome;

  const std::string stats = recorder.ToStatsJson();
  EXPECT_NE(
      stats.find("\"inner\":{\"count\":2,\"total_us\":12,\"max_us\":7}"),
      std::string::npos)
      << stats;
  EXPECT_NE(
      stats.find("\"outer\":{\"count\":1,\"total_us\":25,\"max_us\":25}"),
      std::string::npos)
      << stats;

  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceTest, MergeThreadEventsBumpsCountOncePerBatch) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.MergeThreadEvents({{"a", 0, 1, 0, 0}, {"b", 1, 2, 0, 0}});
  recorder.MergeThreadEvents({});  // empty: not counted
  EXPECT_EQ(recorder.merge_count(), 1u);
  EXPECT_EQ(recorder.Snapshot().size(), 2u);
  recorder.Clear();
  EXPECT_EQ(recorder.merge_count(), 0u);
}

TEST(TraceTest, ConcurrentSpansAllArrive) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(recorder, "work");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.Snapshot().size(), size_t{kThreads} * kPerThread);
}

TEST(HistogramDataTest, QuantilesOfUniformDistributionAreExact) {
  // Uniform 1..1024, one observation each. The power-of-two bucket i >= 2
  // holds exactly the 2^(i-1) values in (2^(i-1)-1, 2^i-1], so linear
  // interpolation from the previous bound reconstructs the true quantile
  // q*N exactly: the bucketing loses nothing on this distribution.
  Histogram h;
  for (uint64_t v = 1; v <= 1024; ++v) h.Observe(v);
  const HistogramData data = h.Data();
  EXPECT_EQ(data.count, 1024u);
  EXPECT_DOUBLE_EQ(data.Quantile(0.50), 512.0);
  EXPECT_DOUBLE_EQ(data.Quantile(0.95), 972.8);
  EXPECT_DOUBLE_EQ(data.Quantile(0.99), 1013.76);
  EXPECT_DOUBLE_EQ(data.Mean(), 512.5);
}

TEST(HistogramDataTest, QuantileEdgeCases) {
  const HistogramData empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_EQ(empty.MaxBound(), 0u);

  // All observations zero: every quantile is 0.
  Histogram zeros;
  for (int i = 0; i < 10; ++i) zeros.Observe(0);
  EXPECT_DOUBLE_EQ(zeros.Data().Quantile(0.99), 0.0);

  // Out-of-range q clamps instead of extrapolating.
  Histogram h;
  h.Observe(8);
  EXPECT_DOUBLE_EQ(h.Data().Quantile(-1.0), h.Data().Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Data().Quantile(2.0), h.Data().Quantile(1.0));

  // The unbounded tail bucket reports its lower edge rather than
  // inventing a value from an infinite width.
  Histogram tail;
  tail.Observe(100);
  tail.Observe(std::numeric_limits<uint64_t>::max());
  EXPECT_DOUBLE_EQ(tail.Data().Quantile(0.99), 127.0);

  // NaN clamps to q=0 like any other out-of-range input — it must not
  // fall through every bucket comparison to the tail bound.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(h.Data().Quantile(nan), h.Data().Quantile(0.0));

  // A racy DiffSince can yield count > 0 with an empty sparse bucket
  // list; that must degrade to 0, not read past the end.
  HistogramData racy;
  racy.count = 3;
  EXPECT_DOUBLE_EQ(racy.Quantile(0.5), 0.0);
}

TEST(HistogramDataTest, DiffSinceSubtractsBuckets) {
  Histogram h;
  for (uint64_t v : {1, 2, 100}) h.Observe(v);
  const HistogramData before = h.Data();
  for (uint64_t v : {3, 100, 5000}) h.Observe(v);
  const HistogramData diff = h.Data().DiffSince(before);
  EXPECT_EQ(diff.count, 3u);
  EXPECT_EQ(diff.sum, 5103u);
  // Only the buckets that grew appear: {3} in [2,3], {100} in [64,127],
  // {5000} in [4096,8191].
  ASSERT_EQ(diff.buckets.size(), 3u);
  EXPECT_EQ(diff.buckets[0], (std::pair<uint64_t, uint64_t>{3, 1}));
  EXPECT_EQ(diff.buckets[1], (std::pair<uint64_t, uint64_t>{127, 1}));
  EXPECT_EQ(diff.buckets[2], (std::pair<uint64_t, uint64_t>{8191, 1}));
}

TEST(SnapshotTest, DiffSinceGivesPerPhaseActivity) {
  MetricsRegistry registry;
  Counter& ops = registry.GetCounter("ops");
  Gauge& level = registry.GetGauge("level");
  Histogram& latency = registry.GetHistogram("latency");

  ops.Increment(10);
  level.Set(3);
  latency.Observe(100);
  const MetricsSnapshot before = registry.Snapshot();

  ops.Increment(5);
  level.Set(7);
  latency.Observe(200);
  latency.Observe(300);
  registry.GetCounter("late_registration").Increment(2);

  const MetricsSnapshot diff = registry.Snapshot().DiffSince(before);
  EXPECT_EQ(diff.counters.at("ops"), 5u);
  // Metrics registered after `before` diff against zero.
  EXPECT_EQ(diff.counters.at("late_registration"), 2u);
  // Gauges are levels: the diff carries the current value.
  EXPECT_EQ(diff.gauges.at("level"), 7);
  EXPECT_EQ(diff.histograms.at("latency").count, 2u);
  EXPECT_EQ(diff.histograms.at("latency").sum, 500u);
}

}  // namespace
}  // namespace obs
}  // namespace xmlup
