#include "ops/operations.h"

#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/tree_algos.h"
#include "xml/xml_writer.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class OperationsTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  std::shared_ptr<const Tree> Content(const char* xml) {
    return std::make_shared<const Tree>(Xml(xml, symbols_));
  }
};

TEST_F(OperationsTest, ReadProjectsNodes) {
  Tree t = Xml("<a><b/><b/></a>", symbols_);
  ReadOp read(Xp("a/b", symbols_));
  EXPECT_EQ(read.Apply(t).size(), 2u);
}

TEST_F(OperationsTest, InsertAtEverySelectedPoint) {
  Tree t = Xml("<a><b/><b/></a>", symbols_);
  InsertOp insert(Xp("a/b", symbols_), Content("<c/>"));
  const InsertOp::Applied applied = insert.ApplyInPlace(&t);
  EXPECT_EQ(applied.insertion_points.size(), 2u);
  EXPECT_EQ(applied.copy_roots.size(), 2u);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(Evaluate(Xp("a/b/c", symbols_), t).size(), 2u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST_F(OperationsTest, InsertCopiesAreFreshAndDisjoint) {
  Tree t = Xml("<a><b/></a>", symbols_);
  InsertOp insert(Xp("a/b", symbols_), Content("<x><y/></x>"));
  const InsertOp::Applied applied = insert.ApplyInPlace(&t);
  ASSERT_EQ(applied.copy_roots.size(), 1u);
  // The inserted copy's nodes are new slots, disjoint from prior nodes.
  EXPECT_GE(applied.copy_roots[0], 2u);
  EXPECT_EQ(t.size(), 4u);
  // The content tree itself is untouched.
  EXPECT_EQ(insert.content().size(), 2u);
}

TEST_F(OperationsTest, InsertEvaluatesBeforeMutating) {
  // Inserting <b/> under b nodes must not cascade into the fresh copies.
  Tree t = Xml("<a><b/></a>", symbols_);
  InsertOp insert(Xp("a//b", symbols_), Content("<b/>"));
  insert.ApplyInPlace(&t);
  EXPECT_EQ(t.size(), 3u);  // exactly one copy inserted
}

TEST_F(OperationsTest, InsertNoMatchIsNoOp) {
  Tree t = Xml("<a/>", symbols_);
  InsertOp insert(Xp("a/zzz", symbols_), Content("<c/>"));
  const InsertOp::Applied applied = insert.ApplyInPlace(&t);
  EXPECT_TRUE(applied.insertion_points.empty());
  EXPECT_EQ(t.size(), 1u);
}

TEST_F(OperationsTest, FunctionalInsertLeavesOriginal) {
  Tree t = Xml("<a><b/></a>", symbols_);
  InsertOp insert(Xp("a/b", symbols_), Content("<c/>"));
  Tree modified = insert.ApplyFunctional(t);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(modified.size(), 3u);
}

TEST_F(OperationsTest, DeleteRemovesSubtrees) {
  Tree t = Xml("<a><b><x/><y/></b><c/></a>", symbols_);
  Result<DeleteOp> del = DeleteOp::Make(Xp("a/b", symbols_));
  ASSERT_TRUE(del.ok());
  const DeleteOp::Applied applied = del->ApplyInPlace(&t);
  EXPECT_EQ(applied.deletion_points.size(), 1u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(WriteXml(t), "<a><c/></a>");
}

TEST_F(OperationsTest, DeleteRejectsRootSelection) {
  EXPECT_FALSE(DeleteOp::Make(Xp("a", symbols_)).ok());
  Pattern p = Xp("a/b", symbols_);
  p.SetOutput(p.root());
  EXPECT_FALSE(DeleteOp::Make(p).ok());
}

TEST_F(OperationsTest, DeleteNestedPointsSubsumed) {
  // a//b selects nested b's; deleting the outer removes the inner.
  Tree t = Xml("<a><b><b/></b></a>", symbols_);
  Result<DeleteOp> del = DeleteOp::Make(Xp("a//b", symbols_));
  ASSERT_TRUE(del.ok());
  const DeleteOp::Applied applied = del->ApplyInPlace(&t);
  EXPECT_EQ(t.size(), 1u);
  // Only the outer b is reported (the inner died with it) — either way the
  // resulting tree is just the root.
  EXPECT_GE(applied.deletion_points.size(), 1u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST_F(OperationsTest, FunctionalDeleteLeavesOriginal) {
  Tree t = Xml("<a><b/></a>", symbols_);
  Result<DeleteOp> del = DeleteOp::Make(Xp("a/b", symbols_));
  ASSERT_TRUE(del.ok());
  Tree modified = del->ApplyFunctional(t);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(modified.size(), 1u);
}

TEST_F(OperationsTest, PaperSection1Example) {
  // §1: insert $x/B, <C/> then read $x//C sees the new nodes, read $x//D
  // does not change.
  Tree t = Xml("<root><B/><D/></root>", symbols_);
  ReadOp read_c(Xp("root//C", symbols_));
  ReadOp read_d(Xp("root//D", symbols_));
  const auto d_before = read_d.Apply(t);
  EXPECT_TRUE(read_c.Apply(t).empty());
  InsertOp insert(Xp("root/B", symbols_), Content("<C/>"));
  insert.ApplyInPlace(&t);
  EXPECT_EQ(read_c.Apply(t).size(), 1u);
  EXPECT_EQ(read_d.Apply(t), d_before);
}

}  // namespace
}  // namespace xmlup
