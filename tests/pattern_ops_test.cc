#include "pattern/pattern_ops.h"

#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "pattern/pattern_writer.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

class PatternOpsTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(PatternOpsTest, PathBetweenRootAndOutput) {
  Pattern p = Xp("a/b//c", symbols_);
  const std::vector<PatternNodeId> path =
      PathBetween(p, p.root(), p.output());
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), p.root());
  EXPECT_EQ(path.back(), p.output());
}

TEST_F(PatternOpsTest, ExtractSeqPreservesAxes) {
  Pattern p = Xp("a/b//c/d", symbols_);
  const Pattern seq = ExtractSeq(p, p.root(), p.output());
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_TRUE(seq.IsLinear());
  EXPECT_EQ(ToXPathString(seq), "a/b//c/d");
}

TEST_F(PatternOpsTest, ExtractSeqPrefix) {
  Pattern p = Xp("a/b/c", symbols_);
  const PatternNodeId b = p.first_child(p.root());
  const Pattern prefix = ExtractSeq(p, p.root(), b);
  EXPECT_EQ(ToXPathString(prefix), "a/b");
  EXPECT_EQ(prefix.output(), prefix.size() - 1);
}

TEST_F(PatternOpsTest, SingleNodeSeq) {
  Pattern p = Xp("a/b", symbols_);
  const Pattern seq = ExtractSeq(p, p.root(), p.root());
  EXPECT_EQ(seq.size(), 1u);
  EXPECT_TRUE(seq.IsLinear());
}

TEST_F(PatternOpsTest, MainlineDropsBranches) {
  Pattern p = Xp("a[x][.//y]/b[z]//c", symbols_);
  const Pattern main = Mainline(p);
  EXPECT_TRUE(main.IsLinear());
  EXPECT_EQ(ToXPathString(main), "a/b//c");
}

TEST_F(PatternOpsTest, MainlineOfLinearIsIdentity) {
  Pattern p = Xp("a//b/c", symbols_);
  EXPECT_TRUE(PatternsIdentical(p, Mainline(p)));
}

TEST_F(PatternOpsTest, SubpatternAt) {
  Pattern p = Xp("a/b[c//d]/e", symbols_);
  const PatternNodeId b = p.first_child(p.root());
  const Pattern sub = SubpatternAt(p, b);
  EXPECT_EQ(sub.size(), 4u);  // b, c, d, e
  EXPECT_EQ(sub.LabelName(sub.root()), "b");
  EXPECT_EQ(sub.output(), sub.root());
}

TEST_F(PatternOpsTest, StarLengthSimple) {
  EXPECT_EQ(StarLength(Xp("a/b/c", symbols_)), 0u);
  EXPECT_EQ(StarLength(Xp("*", symbols_)), 1u);
  EXPECT_EQ(StarLength(Xp("*/*/*", symbols_)), 3u);
  EXPECT_EQ(StarLength(Xp("a/*/*/b/*", symbols_)), 2u);
}

TEST_F(PatternOpsTest, StarLengthBrokenByDescendantEdges) {
  // Chains are consecutive *child* edges; a // edge breaks the chain.
  EXPECT_EQ(StarLength(Xp("*//*", symbols_)), 1u);
  EXPECT_EQ(StarLength(Xp("*/*//*/*/*", symbols_)), 3u);
}

TEST_F(PatternOpsTest, StarLengthInBranches) {
  EXPECT_EQ(StarLength(Xp("a[*/*/*/*]/b", symbols_)), 4u);
}

TEST_F(PatternOpsTest, ModelTreeHasEmbedding) {
  // §2.3: M_p is a model — p always embeds into it.
  const char* cases[] = {"a/b//c", "a[.//c]/b[d][*//f]", "*[*]/a",
                         "x//y[z]"};
  for (const char* xpath : cases) {
    Pattern p = Xp(xpath, symbols_);
    const Label fill = symbols_->Intern("sigma");
    std::vector<NodeId> mapping;
    Tree model = ModelTree(p, fill, &mapping);
    EXPECT_EQ(model.size(), p.size()) << xpath;
    EXPECT_TRUE(HasEmbedding(p, model)) << xpath;
    // The recorded mapping is a valid embedding image set: same size.
    EXPECT_EQ(mapping.size(), p.size());
    for (NodeId n : mapping) EXPECT_NE(n, kNullNode);
  }
}

TEST_F(PatternOpsTest, ModelTreeFillsWildcards) {
  Pattern p = Xp("*/a", symbols_);
  const Label fill = symbols_->Intern("w");
  Tree model = ModelTree(p, fill);
  EXPECT_EQ(model.LabelName(model.root()), "w");
}

TEST_F(PatternOpsTest, GraftModelAttachesSubpattern) {
  Pattern p = Xp("a/b[c]/d", symbols_);
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(symbols_->Intern("root"));
  const PatternNodeId b = p.first_child(p.root());
  const NodeId grafted =
      GraftModel(&t, root, p, b, symbols_->Intern("fill"));
  EXPECT_EQ(t.LabelName(grafted), "b");
  EXPECT_EQ(t.size(), 4u);  // root + b,c,d
  EXPECT_TRUE(t.Validate().ok());
}

TEST_F(PatternOpsTest, PatternsIdenticalPositive) {
  Pattern p = Xp("a[b]//c", symbols_);
  Pattern q = Xp("a[b]//c", symbols_);
  EXPECT_TRUE(PatternsIdentical(p, q));
}

TEST_F(PatternOpsTest, PatternsIdenticalDetectsDifferences) {
  Pattern base = Xp("a[b]/c", symbols_);
  EXPECT_FALSE(PatternsIdentical(base, Xp("a[b]//c", symbols_)));  // axis
  EXPECT_FALSE(PatternsIdentical(base, Xp("a[x]/c", symbols_)));   // label
  EXPECT_FALSE(PatternsIdentical(base, Xp("a[b]/c/d", symbols_))); // size
  EXPECT_FALSE(PatternsIdentical(base, Xp("a[b]/*", symbols_)));   // wildcard
  // Same tree, different output node.
  Pattern q = Xp("a[b]/c", symbols_);
  q.SetOutput(q.root());
  EXPECT_FALSE(PatternsIdentical(base, q));
}

TEST_F(PatternOpsTest, GraftPatternCopiesStructure) {
  Pattern dst = Xp("root", symbols_);
  Pattern src = Xp("a[b]//c", symbols_);
  const PatternNodeId copy =
      GraftPattern(&dst, dst.root(), src, Axis::kDescendant);
  EXPECT_EQ(dst.size(), 4u);
  EXPECT_EQ(dst.axis(copy), Axis::kDescendant);
  EXPECT_EQ(dst.LabelName(copy), "a");
  EXPECT_TRUE(dst.Validate().ok());
}

}  // namespace
}  // namespace xmlup
