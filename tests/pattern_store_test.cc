// PatternStore/PatternRef: interned-ref identity must agree with the two
// independent notions of pattern equality it claims to encode:
//  - canonical-code string equality (CanonicalPatternCode), and
//  - pattern isomorphism up to sibling reordering, decided here by a
//    brute-force backtracking matcher that shares no code with the
//    canonical-code implementation.
// The agreement is verified *exhaustively* for every pattern with at most
// 4 nodes over a 2-label alphabet (all shapes × axes × labels × output
// choices), plus a randomized XPath round-trip property (parse → write →
// parse interns to the same ref), the symbol-table aliasing death test,
// and the obs-counter contract (misses == distinct patterns interned).

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "pattern/pattern_ops.h"
#include "pattern/pattern_store.h"
#include "pattern/pattern_writer.h"
#include "pattern/xpath_parser.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

/// Independent oracle: isomorphism up to sibling reordering, respecting
/// labels, incoming axes and the output-node marking. Exponential in the
/// worst case (tries child permutations by backtracking) — fine for the
/// tiny patterns enumerated here.
bool IsoAt(const Pattern& p, PatternNodeId a, const Pattern& q,
           PatternNodeId b) {
  if (p.label(a) != q.label(b)) return false;
  if ((a == p.output()) != (b == q.output())) return false;
  const std::vector<PatternNodeId> ca = p.Children(a);
  const std::vector<PatternNodeId> cb = q.Children(b);
  if (ca.size() != cb.size()) return false;
  std::vector<bool> used(cb.size(), false);
  std::function<bool(size_t)> match = [&](size_t i) {
    if (i == ca.size()) return true;
    for (size_t j = 0; j < cb.size(); ++j) {
      if (used[j] || p.axis(ca[i]) != q.axis(cb[j])) continue;
      if (!IsoAt(p, ca[i], q, cb[j])) continue;
      used[j] = true;
      if (match(i + 1)) return true;
      used[j] = false;
    }
    return false;
  };
  return match(0);
}

bool PatternsIsomorphic(const Pattern& p, const Pattern& q) {
  return IsoAt(p, p.root(), q, q.root());
}

/// Every pattern with `1 <= size <= max_nodes` over `labels`: all tree
/// shapes (parent[i] < i), all axis assignments, all labelings, all output
/// choices. 3282 patterns for max_nodes = 4 with two labels.
std::vector<Pattern> EnumeratePatterns(
    const std::shared_ptr<SymbolTable>& symbols,
    const std::vector<Label>& labels, size_t max_nodes) {
  std::vector<Pattern> out;
  for (size_t n = 1; n <= max_nodes; ++n) {
    std::vector<size_t> parent(n, 0);
    while (true) {
      const size_t edges = n - 1;
      for (size_t axes = 0; axes < (size_t{1} << edges); ++axes) {
        std::vector<size_t> labeling(n, 0);
        while (true) {
          for (size_t output = 0; output < n; ++output) {
            Pattern p(symbols);
            std::vector<PatternNodeId> ids(n);
            ids[0] = p.CreateRoot(labels[labeling[0]]);
            for (size_t i = 1; i < n; ++i) {
              const Axis axis = (axes >> (i - 1)) & 1 ? Axis::kDescendant
                                                      : Axis::kChild;
              ids[i] = p.AddChild(ids[parent[i]], labels[labeling[i]], axis);
            }
            p.SetOutput(ids[output]);
            out.push_back(std::move(p));
          }
          // Next labeling (mixed-radix increment, radix |labels|).
          size_t i = 0;
          while (i < n && labeling[i] == labels.size() - 1) labeling[i++] = 0;
          if (i == n) break;
          ++labeling[i];
        }
      }
      // Next shape: digit i of the parent array has radix i.
      size_t i = 1;
      while (i < n && parent[i] == i - 1) parent[i++] = 0;
      if (i == n) break;
      ++parent[i];
    }
  }
  return out;
}

TEST(PatternStoreTest, ExhaustiveSmallPatternOracle) {
  auto symbols = NewSymbols();
  const std::vector<Label> labels = {symbols->Intern("a"),
                                     symbols->Intern("b")};
  const std::vector<Pattern> all = EnumeratePatterns(symbols, labels, 4);
  ASSERT_EQ(all.size(), 3282u);  // 2 + 16 + 192 + 3072

  // A non-minimizing store, so ref identity must coincide exactly with
  // canonical-code equality (minimization would additionally merge
  // equivalent-but-non-isomorphic patterns; that is tested separately).
  PatternStore store(symbols, PatternStoreOptions{/*minimize=*/false});
  std::vector<PatternRef> refs(all.size());
  std::unordered_map<std::string, PatternRef> ref_by_code;
  for (size_t i = 0; i < all.size(); ++i) {
    refs[i] = store.Intern(all[i]);
    ASSERT_TRUE(refs[i].valid());
    // Ref identity ⇔ canonical-code equality: all patterns with one code
    // share one ref, and a ref never serves two codes.
    const std::string code = CanonicalPatternCode(all[i]);
    auto [it, inserted] = ref_by_code.emplace(code, refs[i]);
    ASSERT_EQ(it->second, refs[i])
        << "code " << code << " maps to two refs (pattern " << i << ")";
    ASSERT_EQ(store.canonical_code(refs[i]), code);
    // The stored pattern is the pattern (up to sibling order), and the
    // cached linearity bit is honest.
    ASSERT_TRUE(PatternsIsomorphic(store.pattern(refs[i]), all[i])) << i;
    ASSERT_EQ(store.linear(refs[i]), all[i].IsLinear()) << i;
  }
  ASSERT_EQ(store.size(), ref_by_code.size());

  // Ref identity ⇔ isomorphism. Positive direction: within each ref
  // class, every member is isomorphic to the class representative (iso is
  // transitive, so this covers all within-class pairs).
  std::unordered_map<uint32_t, size_t> representative;
  for (size_t i = 0; i < all.size(); ++i) {
    auto [it, inserted] = representative.emplace(refs[i].id(), i);
    if (!inserted) {
      ASSERT_TRUE(PatternsIsomorphic(all[it->second], all[i]))
          << "same ref, not isomorphic: " << it->second << " vs " << i;
    }
  }
  // Negative direction: sampled cross-class pairs must not be isomorphic.
  Rng rng(20060301);  // EDBT 2006 vintage
  size_t checked = 0;
  while (checked < 20000) {
    const size_t i = rng.NextBounded(all.size());
    const size_t j = rng.NextBounded(all.size());
    if (refs[i] == refs[j]) continue;
    ASSERT_FALSE(PatternsIsomorphic(all[i], all[j]))
        << "distinct refs, isomorphic: " << i << " vs " << j;
    ++checked;
  }
}

TEST(PatternStoreTest, MinimizingStoreOnlyMergesRefClasses) {
  auto symbols = NewSymbols();
  const std::vector<Label> labels = {symbols->Intern("a"),
                                     symbols->Intern("b")};
  const std::vector<Pattern> all = EnumeratePatterns(symbols, labels, 4);
  PatternStore plain(symbols, PatternStoreOptions{/*minimize=*/false});
  PatternStore minimizing(symbols, PatternStoreOptions{/*minimize=*/true});
  // Minimization is a function of the canonical form, so it can only merge
  // ref classes (isomorphic patterns stay together), never split them.
  std::unordered_map<uint32_t, PatternRef> merged;
  for (const Pattern& p : all) {
    const PatternRef plain_ref = plain.Intern(p);
    const PatternRef min_ref = minimizing.Intern(p);
    auto [it, inserted] = merged.emplace(plain_ref.id(), min_ref);
    EXPECT_EQ(it->second, min_ref);
  }
  EXPECT_LE(minimizing.size(), plain.size());
  // And it does merge something: a[b][b] minimizes to a[b].
  EXPECT_EQ(minimizing.Intern(Xp("a[b][b]", symbols)),
            minimizing.Intern(Xp("a[b]", symbols)));
  EXPECT_NE(plain.Intern(Xp("a[b][b]", symbols)),
            plain.Intern(Xp("a[b]", symbols)));
}

TEST(PatternStoreTest, XPathRoundTripInternsToSameRef) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  Rng rng(77);
  PatternGenOptions options;
  options.size = 6;
  options.branch_prob = 0.5;
  options.wildcard_prob = 0.2;
  options.descendant_prob = 0.4;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b"),
                      symbols->Intern("c")};
  RandomPatternGenerator gen(symbols, options);
  for (int iter = 0; iter < 200; ++iter) {
    const Pattern p = iter % 2 == 0 ? gen.GenerateLinear(&rng)
                                    : gen.GenerateBranching(&rng);
    const std::string xpath = ToXPathString(p);
    Result<Pattern> reparsed = ParseXPath(xpath, symbols);
    ASSERT_TRUE(reparsed.ok()) << xpath;
    EXPECT_EQ(store->Intern(p), store->Intern(*reparsed))
        << "round trip changed the interned ref: " << xpath;
  }
}

TEST(PatternStoreTest, InternCountsMissesPerDistinctPattern) {
  auto symbols = NewSymbols();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const uint64_t hits_before = reg.GetCounter("pattern_store.hits").value();
  const uint64_t misses_before =
      reg.GetCounter("pattern_store.misses").value();
  const uint64_t bytes_before = reg.GetCounter("pattern_store.bytes").value();

  PatternStore store(symbols);
  const char* kPatterns[] = {"a/b", "a//b", "a[c]/b", "a/b", "a//b", "a/b"};
  for (const char* xpath : kPatterns) store.Intern(Xp(xpath, symbols));

  // misses == distinct patterns (3), regardless of how often each repeats;
  // the other 3 interns are hits. This is the acceptance signal that the
  // batch path canonicalizes once per pattern, not once per pair.
  EXPECT_EQ(reg.GetCounter("pattern_store.misses").value(),
            misses_before + 3);
  EXPECT_EQ(reg.GetCounter("pattern_store.hits").value(), hits_before + 3);
  EXPECT_GT(reg.GetCounter("pattern_store.bytes").value(), bytes_before);
  EXPECT_EQ(store.size(), 3u);
}

TEST(PatternStoreTest, ContentCodesAreExactEqualityClasses) {
  auto symbols = NewSymbols();
  PatternStore store(symbols);
  const Tree c1 = testing_util::Xml("<a><b/><c/></a>", symbols);
  const Tree c2 = testing_util::Xml("<a><c/><b/></a>", symbols);  // reordered
  const Tree c3 = testing_util::Xml("<a><b/></a>", symbols);
  const uint32_t id1 = store.InternContentCode(c1);
  // Unordered-tree equality: sibling order does not distinguish contents.
  EXPECT_EQ(id1, store.InternContentCode(c2));
  EXPECT_NE(id1, store.InternContentCode(c3));
  EXPECT_EQ(id1, store.InternContentCode(c1));
}

TEST(PatternStoreDeathTest, MismatchedSymbolTableIsFatal) {
  auto symbols = NewSymbols();
  auto other = NewSymbols();
  PatternStore store(symbols);
  store.Intern(Xp("a/b", symbols));
  // A pattern from a different table must be rejected loudly: its label
  // ids are incomparable with the store's, so interning it would silently
  // alias unrelated patterns.
  EXPECT_DEATH(store.Intern(Xp("a/b", other)), "different SymbolTable");
}

TEST(PatternStoreDeathTest, TableBindsOnFirstIntern) {
  auto symbols = NewSymbols();
  auto other = NewSymbols();
  PatternStore store;  // no table at construction
  EXPECT_EQ(store.symbols(), nullptr);
  store.Intern(Xp("a", symbols));
  EXPECT_EQ(store.symbols(), symbols);
  EXPECT_DEATH(store.Intern(Xp("a", other)), "different SymbolTable");
}

}  // namespace
}  // namespace xmlup
