#include "pattern/pattern.h"

#include "gtest/gtest.h"
#include "pattern/pattern_writer.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

class PatternTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
  Label L(const char* name) { return symbols_->Intern(name); }
};

TEST_F(PatternTest, SingleNodePattern) {
  Pattern p(symbols_);
  const PatternNodeId root = p.CreateRoot(L("a"));
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.output(), root);  // root is the default output
  EXPECT_TRUE(p.IsLinear());
  EXPECT_TRUE(p.Validate().ok());
}

TEST_F(PatternTest, EdgesCarryAxes) {
  Pattern p(symbols_);
  const PatternNodeId root = p.CreateRoot(L("a"));
  const PatternNodeId b = p.AddChild(root, L("b"), Axis::kChild);
  const PatternNodeId c = p.AddChild(b, L("c"), Axis::kDescendant);
  EXPECT_EQ(p.axis(b), Axis::kChild);
  EXPECT_EQ(p.axis(c), Axis::kDescendant);
  EXPECT_EQ(p.parent(c), b);
}

TEST_F(PatternTest, WildcardNodes) {
  Pattern p(symbols_);
  const PatternNodeId root = p.CreateRoot(kWildcardLabel);
  EXPECT_TRUE(p.is_wildcard(root));
  EXPECT_EQ(p.LabelName(root), "*");
  const PatternNodeId b = p.AddChild(root, L("b"), Axis::kChild);
  EXPECT_FALSE(p.is_wildcard(b));
}

TEST_F(PatternTest, LinearityRequiresSingleChildren) {
  Pattern p(symbols_);
  const PatternNodeId root = p.CreateRoot(L("a"));
  const PatternNodeId b = p.AddChild(root, L("b"), Axis::kChild);
  p.SetOutput(b);
  EXPECT_TRUE(p.IsLinear());
  p.AddChild(root, L("c"), Axis::kChild);
  EXPECT_FALSE(p.IsLinear());
}

TEST_F(PatternTest, LinearityRequiresOutputAtLeaf) {
  Pattern p(symbols_);
  const PatternNodeId root = p.CreateRoot(L("a"));
  const PatternNodeId b = p.AddChild(root, L("b"), Axis::kChild);
  p.SetOutput(root);  // path shape, but output not at the leaf
  EXPECT_FALSE(p.IsLinear());
  p.SetOutput(b);
  EXPECT_TRUE(p.IsLinear());
}

TEST_F(PatternTest, AncestorOrSelf) {
  Pattern p = Xp("a/b[c]/d", symbols_);
  EXPECT_TRUE(p.IsAncestorOrSelf(p.root(), p.output()));
  EXPECT_TRUE(p.IsAncestorOrSelf(p.output(), p.output()));
  EXPECT_FALSE(p.IsAncestorOrSelf(p.output(), p.root()));
}

TEST_F(PatternTest, DistinctLabelsExcludeWildcards) {
  Pattern p = Xp("a[*//b]/a", symbols_);
  const std::vector<Label> labels = p.DistinctLabels();
  EXPECT_EQ(labels.size(), 2u);  // a, b — deduplicated, no '*'
}

TEST_F(PatternTest, ChildrenAndCounts) {
  Pattern p = Xp("a[b][c]/d", symbols_);
  EXPECT_EQ(p.ChildCount(p.root()), 3u);
  EXPECT_EQ(p.Children(p.root()).size(), 3u);
}

TEST_F(PatternTest, PreOrderVisitsAll) {
  Pattern p = Xp("a[b[c]]/d//e", symbols_);
  EXPECT_EQ(p.PreOrder().size(), p.size());
  EXPECT_EQ(p.PostOrder().size(), p.size());
  EXPECT_EQ(p.PreOrder().front(), p.root());
  EXPECT_EQ(p.PostOrder().back(), p.root());
}

TEST_F(PatternTest, DepthOfNodes) {
  Pattern p = Xp("a/b/c", symbols_);
  EXPECT_EQ(p.Depth(p.root()), 0u);
  EXPECT_EQ(p.Depth(p.output()), 2u);
}

TEST_F(PatternTest, CopySemantics) {
  Pattern p = Xp("a/b", symbols_);
  Pattern q = p;  // patterns are value types
  q.AddChild(q.root(), L("extra"), Axis::kChild);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(q.size(), 3u);
}

TEST_F(PatternTest, DebugStringMarksOutput) {
  Pattern p = Xp("a/b", symbols_);
  const std::string debug = DebugString(p);
  EXPECT_NE(debug.find("<== output"), std::string::npos);
  EXPECT_NE(debug.find("a"), std::string::npos);
}

}  // namespace
}  // namespace xmlup
