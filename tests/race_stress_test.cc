// Full-stack race stress: one shared Engine hammered from many threads
// mixing every class of operation the facade's thread-safety contract
// promises can coexist — hot-path Detect / CertifyCommute / Intern /
// Bind, per-thread session edit streams, and per-thread merges — then
// asserts the cross-thread invariants that synchronization bugs break
// first:
//
//   - verdict determinism: every thread that asked the same (read,
//     update) question got the same answer (the caches make verdicts a
//     pure function of the pair, never of scheduling);
//   - counter accounting: detector.calls == conflict + no_conflict +
//     unknown + errors, and product-cache lookups == hits + misses, over
//     the whole concurrent window (via MetricsSnapshot::DiffSince);
//   - store stability: re-interning the whole pattern set after the storm
//     adds nothing (interning deduplicated correctly under contention).
//
// The test is a tier-1 binary and runs in the full-suite TSan CI leg, so
// every lock and every relaxed atomic the storm touches is under the
// checker. Thread and iteration counts are sized for 1-core TSan runners.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "conflict/detector.h"
#include "conflict/update_independence.h"
#include "conflict/update_op.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "merge/merge_executor.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "xml/isomorphism.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

constexpr size_t kThreads = 8;
constexpr int kRounds = 3;

class RaceStressTest : public ::testing::Test {
 protected:
  static EngineOptions StressOptions() {
    // A tiny bounded-search budget and no witness construction keep the
    // NP-path questions cheap enough for 1-core TSan runners. Starved
    // searches land in kUnknown — a verdict bucket like any other for the
    // determinism and accounting invariants below, and one the test
    // *wants* represented.
    EngineOptions options;
    options.batch.detector.search.max_nodes = 3;
    options.batch.detector.build_witness = false;
    return options;
  }

  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
  Engine engine_{symbols_, StressOptions()};

  Pattern P(const std::string& xpath) { return Xp(xpath, symbols_); }
  UpdateOp Del(const std::string& xpath) {
    return std::move(UpdateOp::MakeDelete(P(xpath)).value());
  }
  UpdateOp Ins(const std::string& xpath, const char* xml) {
    return UpdateOp::MakeInsert(
        P(xpath), std::make_shared<const Tree>(Xml(xml, symbols_)));
  }

  /// The fixed question set every thread asks. Mixes overlapping and
  /// disjoint pairs so the storm exercises all verdict buckets' counters.
  std::vector<Pattern> Reads() {
    return {P("shop/a//x"), P("shop/b"), P("shop//y"), P("q/r[s]")};
  }
  std::vector<UpdateOp> Updates() {
    return {Del("shop/a"), Ins("shop/b", "<n/>"), Del("shop//y"),
            Ins("q/r", "<s/>")};
  }

  /// Releases kThreads copies of `body` through a spin gate and joins
  /// them — the join is the happens-before edge for every assertion after.
  template <typename Body>
  void RunStorm(Body body) {
    std::atomic<size_t> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (!go.load()) {
        }
        body(t);
      });
    }
    while (ready.load() != kThreads) {
    }
    go.store(true);
    for (std::thread& thread : threads) thread.join();
  }

  uint64_t Delta(const obs::MetricsSnapshot& diff, const char* name) {
    auto it = diff.counters.find(name);
    return it == diff.counters.end() ? 0u : it->second;
  }
};

TEST_F(RaceStressTest, MixedWorkloadKeepsVerdictsAndAccountingCoherent) {
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  const obs::MetricsSnapshot before = engine_.MetricsSnapshot();

  // Per-thread verdict logs for the shared question set; compared across
  // threads after the join.
  std::vector<std::vector<ConflictVerdict>> detect_log(kThreads);
  std::vector<std::vector<CommutativityCertificate>> commute_log(kThreads);
  std::atomic<int> failures{0};

  RunStorm([&](size_t t) {
    // Every thread interns the shared set (dedup under contention) and
    // binds its own op copies (Bind interns through the store too).
    std::vector<PatternRef> refs;
    for (const Pattern& read : reads) refs.push_back(engine_.Intern(read));
    std::vector<UpdateOp> bound;
    for (const UpdateOp& update : updates) bound.push_back(engine_.Bind(update));

    for (int round = 0; round < kRounds; ++round) {
      // Hot path: the full question matrix through the ref overload.
      for (const PatternRef ref : refs) {
        for (const UpdateOp& update : bound) {
          Result<ConflictReport> report = engine_.Detect(ref, update);
          if (!report.ok()) {
            failures.fetch_add(1);
            continue;
          }
          detect_log[t].push_back(report->verdict);
        }
      }
      // Update/update commutativity certificates.
      for (size_t i = 0; i < bound.size(); ++i) {
        for (size_t j = i + 1; j < bound.size(); ++j) {
          Result<IndependenceReport> cert =
              engine_.CertifyCommute(bound[i], bound[j]);
          if (!cert.ok()) {
            failures.fetch_add(1);
            continue;
          }
          commute_log[t].push_back(cert->certificate);
        }
      }
      // Session stream: a private single-writer matrix over the shared
      // store, edited while other threads detect and merge.
      std::unique_ptr<Engine::Session> session = engine_.MakeSession();
      session->matrix().Assign(reads, updates);
      session->matrix().ReplaceRead(0, reads[1]);
      session->matrix().RemoveRead(reads.size() - 1);
      if (session->matrix().num_reads() != reads.size() - 1) {
        failures.fetch_add(1);
      }
      // Merge: a private executor and tree over the shared engine.
      const MergeExecutor executor(&engine_);
      Tree tree = Xml("<shop><a/><b/></shop>", symbols_);
      const std::vector<std::vector<UpdateOp>> sessions = {
          {Ins("shop/a", "<m/>")}, {Ins("shop/b", "<n/>")}};
      Result<MergeReport> merged = executor.Merge(&tree, sessions);
      if (!merged.ok() ||
          merged->accepted + merged->serialized + merged->rejected !=
              merged->ops_total) {
        failures.fetch_add(1);
      }
    }
  });

  EXPECT_EQ(failures.load(), 0);

  // Cross-thread determinism: every thread saw the identical verdict
  // sequence for the identical question sequence.
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(detect_log[t], detect_log[0]) << "thread " << t;
    EXPECT_EQ(commute_log[t], commute_log[0]) << "thread " << t;
  }
  ASSERT_EQ(detect_log[0].size(),
            static_cast<size_t>(kRounds) * Reads().size() * Updates().size());

  // Accounting invariants over the whole concurrent window. Relaxed
  // counter updates are allowed to be momentarily behind mid-storm; after
  // the joins above they must balance exactly.
  const obs::MetricsSnapshot diff = engine_.MetricsSnapshot().DiffSince(before);
  EXPECT_EQ(Delta(diff, "detector.errors"), 0u);
  EXPECT_EQ(Delta(diff, "detector.calls"),
            Delta(diff, "detector.verdict.conflict") +
                Delta(diff, "detector.verdict.no_conflict") +
                Delta(diff, "detector.verdict.unknown") +
                Delta(diff, "detector.errors"));
  EXPECT_EQ(Delta(diff, "detector.product_cache.lookups"),
            Delta(diff, "detector.product_cache.hits") +
                Delta(diff, "detector.product_cache.misses"));
  // Every compiled-form build is counted at most once per interned entry
  // (the once-latch), no matter how many threads raced it.
  EXPECT_LE(Delta(diff, "store.nfa.misses"), engine_.store()->size());

  // Store stability: the storm interned everything; re-interning the full
  // set from the main thread must add nothing.
  const size_t size_after_storm = engine_.store()->size();
  for (const Pattern& read : Reads()) engine_.Intern(read);
  for (const UpdateOp& update : Updates()) engine_.Bind(update);
  EXPECT_EQ(engine_.store()->size(), size_after_storm);
}

TEST_F(RaceStressTest, SerializedBatchCallsInterleaveWithHotPath) {
  // Half the threads drive serialized entry points (DetectMatrix — the
  // facade serializes them on batch_mu_), half drive the lock-free hot
  // path; verdicts must agree between the two paths.
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();

  // Reference verdicts, computed single-threaded through the hot path.
  std::vector<ConflictVerdict> reference;
  {
    std::vector<PatternRef> refs;
    for (const Pattern& read : reads) refs.push_back(engine_.Intern(read));
    for (const PatternRef ref : refs) {
      for (const UpdateOp& update : updates) {
        reference.push_back(engine_.Detect(ref, engine_.Bind(update))->verdict);
      }
    }
  }

  std::atomic<int> failures{0};
  RunStorm([&](size_t t) {
    for (int round = 0; round < kRounds; ++round) {
      if (t % 2 == 0) {
        const std::vector<SharedConflictResult> matrix =
            engine_.DetectMatrix(reads, updates);
        for (size_t k = 0; k < matrix.size(); ++k) {
          if (!matrix[k]->ok() || matrix[k]->value().verdict != reference[k]) {
            failures.fetch_add(1);
          }
        }
      } else {
        std::vector<PatternRef> refs;
        for (const Pattern& read : reads) refs.push_back(engine_.Intern(read));
        size_t k = 0;
        for (const PatternRef ref : refs) {
          for (const UpdateOp& update : updates) {
            Result<ConflictReport> report = engine_.Detect(ref, update);
            if (!report.ok() || report->verdict != reference[k]) {
              failures.fetch_add(1);
            }
            ++k;
          }
        }
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xmlup
