#include "common/random.h"

#include <set>

#include "gtest/gtest.h"

namespace xmlup {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, BoolRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.05);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextWeighted({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(RngTest, WeightedRoughProportions) {
  Rng rng(29);
  int counts[2] = {0, 0};
  const int n = 10000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted({1.0, 3.0})];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.05);
}

}  // namespace
}  // namespace xmlup
