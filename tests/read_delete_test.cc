#include "conflict/read_delete.h"

#include "common/random.h"
#include "conflict/bounded_search.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

class ReadDeleteTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  ConflictReport Detect(const char* read, const char* del,
                              ConflictSemantics semantics =
                                  ConflictSemantics::kNode) {
    Result<ConflictReport> r = DetectLinearReadDeleteConflict(
        Xp(read, symbols_), Xp(del, symbols_), semantics);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }
};

TEST_F(ReadDeleteTest, DeleteOfReadTargetConflicts) {
  const ConflictReport r = Detect("a/b", "a/b");
  EXPECT_TRUE(r.conflict());
  ASSERT_TRUE(r.witness.has_value());
}

TEST_F(ReadDeleteTest, DisjointLabelsNoConflict) {
  EXPECT_FALSE(Detect("a/b", "a/c").conflict());
}

TEST_F(ReadDeleteTest, DescendantReadReachesIntoDeletedSubtree) {
  // Deleting c children can remove b *descendants* living inside them.
  EXPECT_TRUE(Detect("a//b", "a/c").conflict());
}

TEST_F(ReadDeleteTest, DescendantReadConflictsWithAncestorDeletion) {
  // Deleting c children can remove subtrees containing b descendants.
  EXPECT_TRUE(Detect("a//b", "a//c").conflict());
}

TEST_F(ReadDeleteTest, ChildEdgeRequiresStrongMatch) {
  // read a/b (child edge), delete a/c/b: the deletion point is at depth 2,
  // but the read's b is at depth 1 — no conflict.
  EXPECT_FALSE(Detect("a/b", "a/c/b").conflict());
  // read a//b can reach depth 2: conflict.
  EXPECT_TRUE(Detect("a//b", "a/c/b").conflict());
}

TEST_F(ReadDeleteTest, WildcardsEnableConflict) {
  EXPECT_TRUE(Detect("a/*", "a/c").conflict());
  EXPECT_TRUE(Detect("a/b", "a/*").conflict());
  EXPECT_TRUE(Detect("*//x", "*/y").conflict());
}

TEST_F(ReadDeleteTest, RootLabelMismatchNoConflict) {
  EXPECT_FALSE(Detect("a/b", "z/b").conflict());
}

TEST_F(ReadDeleteTest, DeletionBelowReadOutputIsNotNodeConflict) {
  // The deletion point lies strictly below anything the read returns.
  EXPECT_FALSE(Detect("a/b", "a/b/c").conflict());
  // But it is a tree conflict (the returned subtree is modified) and a
  // value conflict (Lemma 2).
  EXPECT_TRUE(Detect("a/b", "a/b/c", ConflictSemantics::kTree).conflict());
  EXPECT_TRUE(Detect("a/b", "a/b/c", ConflictSemantics::kValue).conflict());
}

TEST_F(ReadDeleteTest, BranchingDeleteUsesMainline) {
  // Corollary 1: the delete may branch; conflict behavior follows its
  // mainline a/b.
  EXPECT_TRUE(Detect("a/b", "a[x][.//y]/b[z]").conflict());
  EXPECT_FALSE(Detect("a/c", "a[x][.//y]/b[z]").conflict());
}

TEST_F(ReadDeleteTest, RejectsNonLinearRead) {
  Result<ConflictReport> r = DetectLinearReadDeleteConflict(
      Xp("a[x]/b", symbols_), Xp("a/b", symbols_));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ReadDeleteTest, RejectsRootDeletingPattern) {
  Result<ConflictReport> r = DetectLinearReadDeleteConflict(
      Xp("a/b", symbols_), Xp("a", symbols_));
  EXPECT_FALSE(r.ok());
}

TEST_F(ReadDeleteTest, WitnessesAreVerified) {
  const char* cases[][2] = {
      {"a/b", "a/b"},       {"a//b", "a//c"},    {"a/*/c", "a/x"},
      {"*//m", "*/k[z]"},   {"a//b//c", "a/b"},  {"r/s/t", "r[q]/s"},
  };
  for (const auto& c : cases) {
    const ConflictReport r = Detect(c[0], c[1]);
    if (!r.conflict()) continue;
    ASSERT_TRUE(r.witness.has_value()) << c[0] << " vs " << c[1];
    EXPECT_TRUE(IsReadDeleteWitness(Xp(c[0], symbols_), Xp(c[1], symbols_),
                                    *r.witness, ConflictSemantics::kNode))
        << c[0] << " vs " << c[1];
  }
}

TEST_F(ReadDeleteTest, SingleNodeReadNeverConflicts) {
  // A read of just the root cannot lose nodes to deletion (the root
  // survives every DELETE).
  EXPECT_FALSE(Detect("a", "a//b").conflict());
  EXPECT_FALSE(Detect("*", "*/x").conflict());
  // Under tree semantics it does conflict: the root's subtree changes.
  EXPECT_TRUE(Detect("a", "a//b", ConflictSemantics::kTree).conflict());
}

TEST_F(ReadDeleteTest, DpMatcherGivesSameAnswers) {
  const char* cases[][2] = {
      {"a/b", "a/b"},     {"a/b", "a/c"},   {"a//b", "a//c"},
      {"a/b", "a/b/c"},   {"a/*", "a/c"},   {"a/b", "a/c/b"},
  };
  for (const auto& c : cases) {
    Result<ConflictReport> nfa = DetectLinearReadDeleteConflict(
        Xp(c[0], symbols_), Xp(c[1], symbols_), ConflictSemantics::kNode,
        MatcherKind::kNfa);
    Result<ConflictReport> dp = DetectLinearReadDeleteConflict(
        Xp(c[0], symbols_), Xp(c[1], symbols_), ConflictSemantics::kNode,
        MatcherKind::kDp);
    ASSERT_TRUE(nfa.ok());
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(nfa->conflict(), dp->conflict()) << c[0] << " vs " << c[1];
  }
}

TEST_F(ReadDeleteTest, Section6SatisfiabilityEncoding) {
  // §6 "Fragments of XPath": satisfiability of a delete pattern is
  // encodable as a read-delete conflict against a read that selects all
  // (non-root) nodes. Patterns in P^{//,[],*} are always satisfiable, so
  // the conflict must always be found.
  const char* deletes[] = {"a/b", "*//*", "x[y][.//z]/w", "*/a[b/c]//d"};
  for (const char* del : deletes) {
    EXPECT_TRUE(Detect("*//*", del).conflict()) << del;
  }
}

/// The load-bearing property: on random pattern pairs the PTIME detector
/// agrees with exhaustive small-tree search. Detector conflicts come with
/// internally verified witnesses, so "detector yes" is always sound; this
/// sweep checks "detector no ⇒ no small witness exists" and "brute-force
/// witness ⇒ detector yes".
class ReadDeletePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReadDeletePropertyTest, AgreesWithBruteForce) {
  auto symbols = NewSymbols();
  Rng rng(7000 + GetParam());
  PatternGenOptions options;
  options.size = 3;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);

  BoundedSearchOptions search;
  search.max_nodes = 5;

  for (int iter = 0; iter < 12; ++iter) {
    const Pattern read = gen.GenerateLinear(&rng);
    const Pattern del = rng.NextBool(0.5)
                            ? gen.GenerateLinear(&rng)
                            : gen.GenerateBranchingNonRootOutput(&rng);
    if (del.output() == del.root()) continue;

    for (ConflictSemantics semantics :
         {ConflictSemantics::kNode, ConflictSemantics::kTree,
          ConflictSemantics::kValue}) {
      Result<ConflictReport> detect =
          DetectLinearReadDeleteConflict(read, del, semantics);
      ASSERT_TRUE(detect.ok())
          << detect.status() << " seed=" << GetParam() << " iter=" << iter;
      const BruteForceResult brute =
          BruteForceReadDeleteSearch(read, del, semantics, search);
      if (brute.outcome == SearchOutcome::kWitnessFound) {
        EXPECT_TRUE(detect->conflict())
            << "brute force found a witness the detector missed; seed="
            << GetParam() << " iter=" << iter << " semantics="
            << ConflictSemanticsName(semantics);
      }
      if (!detect->conflict() &&
          brute.outcome == SearchOutcome::kExhaustedNoWitness) {
        SUCCEED();  // both agree there is no small witness
      }
      if (detect->conflict()) {
        ASSERT_TRUE(detect->witness.has_value());
        EXPECT_TRUE(IsReadDeleteWitness(read, del, *detect->witness,
                                        semantics));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReadDeletePropertyTest,
                         ::testing::Range(0, 14));

/// Lemma 2: for linear patterns, tree conflicts and value conflicts are
/// the same decision problem.
class Lemma2DeleteTest : public ::testing::TestWithParam<int> {};

TEST_P(Lemma2DeleteTest, TreeAndValueSemanticsCoincide) {
  auto symbols = NewSymbols();
  Rng rng(61000 + GetParam());
  PatternGenOptions options;
  options.size = 4;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);
  for (int iter = 0; iter < 20; ++iter) {
    const Pattern read = gen.GenerateLinear(&rng);
    const Pattern del = gen.GenerateLinear(&rng);
    if (del.output() == del.root()) continue;
    Result<ConflictReport> tree_sem = DetectLinearReadDeleteConflict(
        read, del, ConflictSemantics::kTree);
    Result<ConflictReport> value_sem = DetectLinearReadDeleteConflict(
        read, del, ConflictSemantics::kValue);
    ASSERT_TRUE(tree_sem.ok()) << tree_sem.status();
    ASSERT_TRUE(value_sem.ok()) << value_sem.status();
    EXPECT_EQ(tree_sem->conflict(), value_sem->conflict())
        << "Lemma 2 violated; seed=" << GetParam() << " iter=" << iter;
    // Node conflicts imply tree conflicts.
    Result<ConflictReport> node_sem = DetectLinearReadDeleteConflict(
        read, del, ConflictSemantics::kNode);
    ASSERT_TRUE(node_sem.ok());
    if (node_sem->conflict()) {
      EXPECT_TRUE(tree_sem->conflict());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma2DeleteTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace xmlup
