#include "conflict/read_insert.h"

#include "common/random.h"
#include "conflict/bounded_search.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "workload/tree_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class ReadInsertTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  ConflictReport Detect(const char* read, const char* ins,
                              const char* x,
                              ConflictSemantics semantics =
                                  ConflictSemantics::kNode) {
    Tree inserted = Xml(x, symbols_);
    Result<ConflictReport> r = DetectLinearReadInsertConflict(
        Xp(read, symbols_), Xp(ins, symbols_), inserted, semantics);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }
};

TEST_F(ReadInsertTest, PaperSection1Conflict) {
  // read $x//C vs insert $x/B, <C/> — the motivating example.
  EXPECT_TRUE(Detect("x//C", "x/B", "<C/>").conflict());
}

TEST_F(ReadInsertTest, PaperSection1NoConflict) {
  // read $x//D cannot see the inserted <C/>.
  EXPECT_FALSE(Detect("x//D", "x/B", "<C/>").conflict());
}

TEST_F(ReadInsertTest, PaperSection1FunctionalExample) {
  // read $x/*/A vs insert $x/B, <C/> — the inserted C (a grandchild)
  // cannot be an A grandchild, and nothing below it is at depth 2.
  EXPECT_FALSE(Detect("x/*/A", "x/B", "<C/>").conflict());
  // With X containing an A child, the grandchild read *does* see it:
  // x/B/A — wait, /*/A selects grandchildren; A inside X at depth 1 under
  // B lands at depth 2: conflict.
  EXPECT_TRUE(Detect("x/*/A", "x/B", "<A/>").conflict());
}

TEST_F(ReadInsertTest, ChildEdgeNeedsInsertAtExactDepth) {
  // read a/b/c: c at depth 2. insert at a/b adds X=<c/> at depth 2 ✓.
  EXPECT_TRUE(Detect("a/b/c", "a/b", "<c/>").conflict());
  // insert at a adds <c/> at depth 1 ✗.
  EXPECT_FALSE(Detect("a/b/c", "a//q", "<q/>").conflict());
}

TEST_F(ReadInsertTest, SuffixMustEmbedIntoX) {
  EXPECT_TRUE(Detect("a//m/n", "a/b", "<m><n/></m>").conflict());
  EXPECT_FALSE(Detect("a//m/n", "a/b", "<m><k/></m>").conflict());
  // Descendant edge: the suffix may anchor deeper inside X.
  EXPECT_TRUE(Detect("a//n", "a/b", "<m><n/></m>").conflict());
  // Child edge into X requires the suffix at X's *root*.
  EXPECT_FALSE(Detect("a/b/n", "a/b", "<m><n/></m>").conflict());
  EXPECT_TRUE(Detect("a/b/m", "a/b", "<m><n/></m>").conflict());
}

TEST_F(ReadInsertTest, WildcardReadSeesAnyInsertion) {
  EXPECT_TRUE(Detect("a//*", "a/b", "<z/>").conflict());
  EXPECT_TRUE(Detect("*/*", "*", "<z/>").conflict());
}

TEST_F(ReadInsertTest, RootLabelMismatchNoConflict) {
  EXPECT_FALSE(Detect("a//b", "z//q", "<b/>").conflict());
}

TEST_F(ReadInsertTest, BranchingInsertUsesMainline) {
  // Corollary 2: branching insert patterns behave like their mainline.
  EXPECT_TRUE(Detect("a/b/c", "a[x][.//y]/b[z]", "<c/>").conflict());
  EXPECT_FALSE(Detect("a/q", "a[x][.//y]/b[z]", "<c/>").conflict());
}

TEST_F(ReadInsertTest, SingleNodeReadNeverNodeConflicts) {
  EXPECT_FALSE(Detect("a", "a//b", "<c/>").conflict());
  // Tree semantics: the root's subtree is modified whenever an insertion
  // can happen at all.
  EXPECT_TRUE(Detect("a", "a//b", "<c/>",
                     ConflictSemantics::kTree).conflict());
  EXPECT_TRUE(Detect("a", "a//b", "<c/>",
                     ConflictSemantics::kValue).conflict());
}

TEST_F(ReadInsertTest, TreeConflictWhenInsertionBelowResult) {
  // Insertion lands strictly below what the read returns.
  EXPECT_FALSE(Detect("a/b", "a/b/c", "<z/>").conflict());
  EXPECT_TRUE(
      Detect("a/b", "a/b/c", "<z/>", ConflictSemantics::kTree).conflict());
  EXPECT_TRUE(
      Detect("a/b", "a/b/c", "<z/>", ConflictSemantics::kValue).conflict());
}

TEST_F(ReadInsertTest, RejectsNonLinearRead) {
  Tree x = Xml("<c/>", symbols_);
  Result<ConflictReport> r = DetectLinearReadInsertConflict(
      Xp("a[q]/b", symbols_), Xp("a/b", symbols_), x);
  EXPECT_FALSE(r.ok());
}

TEST_F(ReadInsertTest, WitnessesAreVerified) {
  struct Case {
    const char* read;
    const char* ins;
    const char* x;
  };
  const Case cases[] = {
      {"x//C", "x/B", "<C/>"},
      {"a/b/c", "a/b", "<c/>"},
      {"a//m/n", "a/b", "<m><n/></m>"},
      {"a//*", "a[p]//b[q]", "<z/>"},
      {"*//w", "*//v", "<u><w/></u>"},
  };
  for (const Case& c : cases) {
    const ConflictReport r = Detect(c.read, c.ins, c.x);
    if (!r.conflict()) continue;
    ASSERT_TRUE(r.witness.has_value());
    Tree x = Xml(c.x, symbols_);
    EXPECT_TRUE(IsReadInsertWitness(Xp(c.read, symbols_), Xp(c.ins, symbols_),
                                    x, *r.witness, ConflictSemantics::kNode))
        << c.read << " / " << c.ins;
  }
}

/// Property sweep against the exhaustive oracle (cf. read_delete_test).
class ReadInsertPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReadInsertPropertyTest, AgreesWithBruteForce) {
  auto symbols = NewSymbols();
  Rng rng(9000 + GetParam());
  PatternGenOptions options;
  options.size = 3;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);

  TreeGenOptions content_options;
  content_options.target_size = 3;
  content_options.alphabet = options.alphabet;
  RandomTreeGenerator contents(symbols, content_options);

  BoundedSearchOptions search;
  search.max_nodes = 4;

  for (int iter = 0; iter < 10; ++iter) {
    const Pattern read = gen.GenerateLinear(&rng);
    const Pattern ins = rng.NextBool(0.5) ? gen.GenerateLinear(&rng)
                                          : gen.GenerateBranching(&rng);
    const Tree x = contents.Generate(&rng);

    for (ConflictSemantics semantics :
         {ConflictSemantics::kNode, ConflictSemantics::kTree,
          ConflictSemantics::kValue}) {
      Result<ConflictReport> detect =
          DetectLinearReadInsertConflict(read, ins, x, semantics);
      ASSERT_TRUE(detect.ok())
          << detect.status() << " seed=" << GetParam() << " iter=" << iter;
      const BruteForceResult brute =
          BruteForceReadInsertSearch(read, ins, x, semantics, search);
      if (brute.outcome == SearchOutcome::kWitnessFound) {
        EXPECT_TRUE(detect->conflict())
            << "brute force found a witness the detector missed; seed="
            << GetParam() << " iter=" << iter << " semantics="
            << ConflictSemanticsName(semantics);
      }
      if (detect->conflict()) {
        ASSERT_TRUE(detect->witness.has_value());
        EXPECT_TRUE(
            IsReadInsertWitness(read, ins, x, *detect->witness, semantics));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReadInsertPropertyTest,
                         ::testing::Range(0, 14));

/// Lemma 2 for read-insert: tree and value semantics coincide on linear
/// patterns; node conflicts imply both.
class Lemma2InsertTest : public ::testing::TestWithParam<int> {};

TEST_P(Lemma2InsertTest, TreeAndValueSemanticsCoincide) {
  auto symbols = NewSymbols();
  Rng rng(63000 + GetParam());
  PatternGenOptions options;
  options.size = 4;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);
  TreeGenOptions content_options;
  content_options.target_size = 3;
  content_options.alphabet = options.alphabet;
  RandomTreeGenerator contents(symbols, content_options);
  for (int iter = 0; iter < 20; ++iter) {
    const Pattern read = gen.GenerateLinear(&rng);
    const Pattern ins = gen.GenerateLinear(&rng);
    const Tree x = contents.Generate(&rng);
    Result<ConflictReport> tree_sem = DetectLinearReadInsertConflict(
        read, ins, x, ConflictSemantics::kTree);
    Result<ConflictReport> value_sem = DetectLinearReadInsertConflict(
        read, ins, x, ConflictSemantics::kValue);
    ASSERT_TRUE(tree_sem.ok()) << tree_sem.status();
    ASSERT_TRUE(value_sem.ok()) << value_sem.status();
    EXPECT_EQ(tree_sem->conflict(), value_sem->conflict())
        << "Lemma 2 violated; seed=" << GetParam() << " iter=" << iter;
    Result<ConflictReport> node_sem = DetectLinearReadInsertConflict(
        read, ins, x, ConflictSemantics::kNode);
    ASSERT_TRUE(node_sem.ok());
    if (node_sem->conflict()) {
      EXPECT_TRUE(tree_sem->conflict());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma2InsertTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace xmlup
