#include "conflict/reductions.h"

#include "common/random.h"
#include "conflict/bounded_search.h"
#include "conflict/containment.h"
#include "conflict/witness_check.h"
#include "gtest/gtest.h"
#include "pattern/pattern_writer.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

class ReductionsTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(ReductionsTest, ReadInsertShapes) {
  const Pattern p = Xp("m/n", symbols_);
  const Pattern q = Xp("m//n", symbols_);
  const ReadInsertReduction r = ReduceNonContainmentToReadInsert(p, q);
  // q_R = α[β[p'][γ]] has 1 + 1 + |p'| + 1 nodes, output at the root.
  EXPECT_EQ(r.read.size(), 2u + q.size() + 1u);
  EXPECT_EQ(r.read.output(), r.read.root());
  // q_I = α[β[p][γ]]/β[p'] has 1 + (1+|p|+1) + (1+|p'|) nodes.
  EXPECT_EQ(r.insert_pattern.size(), 1u + 2u + p.size() + 1u + q.size());
  EXPECT_NE(r.insert_pattern.output(), r.insert_pattern.root());
  // X = <γ/>.
  EXPECT_EQ(r.inserted.size(), 1u);
  EXPECT_EQ(r.inserted.label(r.inserted.root()), r.gamma);
  // Fresh symbols are pairwise distinct and unused in p, q.
  EXPECT_NE(r.alpha, r.beta);
  EXPECT_NE(r.beta, r.gamma);
}

TEST_F(ReductionsTest, NonContainmentYieldsVerifiedInsertConflict) {
  // p = m//n ⊄ q = m/n.
  const Pattern p = Xp("m//n", symbols_);
  const Pattern q = Xp("m/n", symbols_);
  const ContainmentDecision d = DecideContainment(p, q);
  ASSERT_FALSE(d.contained);
  const ReadInsertReduction r = ReduceNonContainmentToReadInsert(p, q);
  Result<Tree> witness =
      BuildReadInsertReductionWitness(r, q, *d.counterexample);
  ASSERT_TRUE(witness.ok()) << witness.status();
  EXPECT_TRUE(IsReadInsertWitness(r.read, r.insert_pattern, r.inserted,
                                  *witness, ConflictSemantics::kNode));
}

TEST_F(ReductionsTest, NonContainmentYieldsVerifiedDeleteConflict) {
  const Pattern p = Xp("m//n", symbols_);
  const Pattern q = Xp("m/n", symbols_);
  const ContainmentDecision d = DecideContainment(p, q);
  ASSERT_FALSE(d.contained);
  const ReadDeleteReduction r = ReduceNonContainmentToReadDelete(p, q);
  EXPECT_NE(r.delete_pattern.output(), r.delete_pattern.root());
  Result<Tree> witness =
      BuildReadDeleteReductionWitness(r, q, *d.counterexample);
  ASSERT_TRUE(witness.ok()) << witness.status();
  EXPECT_TRUE(IsReadDeleteWitness(r.read, r.delete_pattern, *witness,
                                  ConflictSemantics::kNode));
}

TEST_F(ReductionsTest, ContainedPairsYieldNoSmallInsertConflict) {
  // p = m/n ⊆ q = m//n: by Theorem 4 the reduced instance must NOT
  // conflict; check exhaustively over small trees.
  const Pattern p = Xp("m/n", symbols_);
  const Pattern q = Xp("m//n", symbols_);
  ASSERT_TRUE(DecideContainment(p, q).contained);
  const ReadInsertReduction r = ReduceNonContainmentToReadInsert(p, q);
  BoundedSearchOptions options;
  options.max_nodes = 6;
  options.extra_labels = 1;
  const BruteForceResult search = BruteForceReadInsertSearch(
      r.read, r.insert_pattern, r.inserted, ConflictSemantics::kNode,
      options);
  EXPECT_NE(search.outcome, SearchOutcome::kWitnessFound)
      << "reduction of a contained pair must be conflict-free";
}

TEST_F(ReductionsTest, ContainedPairsYieldNoSmallDeleteConflict) {
  const Pattern p = Xp("m/n", symbols_);
  const Pattern q = Xp("m//n", symbols_);
  const ReadDeleteReduction r = ReduceNonContainmentToReadDelete(p, q);
  BoundedSearchOptions options;
  options.max_nodes = 6;
  const BruteForceResult search = BruteForceReadDeleteSearch(
      r.read, r.delete_pattern, ConflictSemantics::kNode, options);
  EXPECT_NE(search.outcome, SearchOutcome::kWitnessFound);
}

TEST_F(ReductionsTest, DeltaModificationCoversTreeAndValueSemantics) {
  // §5 REMARKS: with a δ output child on the read, the same reduction
  // witnesses node, tree AND value conflicts (the δ subtree is never
  // modified, so tree/value conflicts can only come from node conflicts).
  const Pattern p = Xp("m//n", symbols_);
  const Pattern q = Xp("m/n", symbols_);
  const ContainmentDecision d = DecideContainment(p, q);
  ASSERT_FALSE(d.contained);
  const ReadInsertReduction r = ReduceNonContainmentToReadInsert(p, q);
  Label delta = kInvalidLabel;
  const Pattern modified_read = WithDeltaOutput(r.read, &delta);
  ASSERT_NE(delta, kInvalidLabel);
  EXPECT_EQ(modified_read.size(), r.read.size() + 1);
  EXPECT_NE(modified_read.output(), modified_read.root());

  // Extend the Figure 7d witness with the δ child the modified read needs.
  Result<Tree> base = BuildReadInsertReductionWitness(r, q, *d.counterexample);
  ASSERT_TRUE(base.ok()) << base.status();
  Tree witness = std::move(base).value();
  witness.AddChild(witness.root(), delta);
  for (ConflictSemantics semantics :
       {ConflictSemantics::kNode, ConflictSemantics::kTree,
        ConflictSemantics::kValue}) {
    EXPECT_TRUE(IsReadInsertWitness(modified_read, r.insert_pattern,
                                    r.inserted, witness, semantics))
        << ConflictSemanticsName(semantics);
  }
}

/// End-to-end sweep: containment decision → reduction → witness synthesis
/// for random pattern pairs. Every non-contained pair must produce a
/// verified conflict witness; contained pairs are spot-checked for the
/// absence of small witnesses.
class ReductionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReductionPropertyTest, PipelineIsConsistent) {
  auto symbols = NewSymbols();
  Rng rng(20000 + GetParam());
  PatternGenOptions options;
  options.size = 3;
  options.wildcard_prob = 0.2;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);

  int checked_contained = 0;
  for (int iter = 0; iter < 8; ++iter) {
    const Pattern p = gen.GenerateBranching(&rng);
    const Pattern q = gen.GenerateBranching(&rng);
    const ContainmentDecision d = DecideContainment(p, q);
    if (!d.contained) {
      const ReadInsertReduction ri = ReduceNonContainmentToReadInsert(p, q);
      Result<Tree> wi =
          BuildReadInsertReductionWitness(ri, q, *d.counterexample);
      ASSERT_TRUE(wi.ok()) << wi.status() << "\np=" << ToXPathString(p)
                           << "\nq=" << ToXPathString(q);
      const ReadDeleteReduction rd = ReduceNonContainmentToReadDelete(p, q);
      Result<Tree> wd =
          BuildReadDeleteReductionWitness(rd, q, *d.counterexample);
      ASSERT_TRUE(wd.ok()) << wd.status() << "\np=" << ToXPathString(p)
                           << "\nq=" << ToXPathString(q);
    } else if (checked_contained < 2) {
      // Exhaustive no-conflict checks are expensive; sample a couple.
      ++checked_contained;
      const ReadInsertReduction ri = ReduceNonContainmentToReadInsert(p, q);
      BoundedSearchOptions search;
      search.max_nodes = 5;
      search.max_trees = 400000;
      const BruteForceResult result = BruteForceReadInsertSearch(
          ri.read, ri.insert_pattern, ri.inserted, ConflictSemantics::kNode,
          search);
      EXPECT_NE(result.outcome, SearchOutcome::kWitnessFound)
          << "p=" << ToXPathString(p) << " q=" << ToXPathString(q);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReductionPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace xmlup
