#include "conflict/reparent.h"

#include "common/random.h"
#include "conflict/read_delete.h"
#include "eval/evaluator.h"
#include "conflict/read_insert.h"
#include "gtest/gtest.h"
#include "pattern/pattern_ops.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class ReparentTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(ReparentTest, ReparentBuildsAlphaChain) {
  // Chain r -> n1 -> n2 -> n3 -> n4 -> v ; reparent v w.r.t. r with k=1.
  Tree t(symbols_);
  NodeId n = t.CreateRoot(symbols_->Intern("r"));
  const NodeId u = n;
  for (int i = 0; i < 4; ++i) {
    n = t.AddChild(n, symbols_->Intern("n"));
  }
  const NodeId v = t.AddChild(n, symbols_->Intern("v"));
  const Label alpha = symbols_->Intern("ALPHA");
  const ReparentResult result = Reparent(t, u, v, /*k=*/1, alpha);
  ASSERT_TRUE(result.tree.Validate().ok());
  // v's subtree hangs under u behind k+1 = 2 alpha nodes; the old chain
  // remains (now without v).
  const NodeId new_v = result.mapping.at(v);
  EXPECT_EQ(result.tree.LabelName(new_v), "v");
  NodeId p = result.tree.parent(new_v);
  EXPECT_EQ(result.tree.LabelName(p), "ALPHA");
  p = result.tree.parent(p);
  EXPECT_EQ(result.tree.LabelName(p), "ALPHA");
  EXPECT_EQ(result.tree.parent(p), result.mapping.at(u));
  EXPECT_EQ(result.tree.size(), t.size() + 2);
}

TEST_F(ReparentTest, ReparentPreservesOtherSubtrees) {
  Tree t = Xml("<r><a><b><c><d><v><w/></v></d></c></b></a><q/></r>",
               symbols_);
  // Find v.
  NodeId v = kNullNode;
  for (NodeId n : t.PreOrder()) {
    if (t.LabelName(n) == "v") v = n;
  }
  ASSERT_NE(v, kNullNode);
  const ReparentResult result =
      Reparent(t, t.root(), v, /*k=*/0, symbols_->Intern("AL"));
  ASSERT_TRUE(result.tree.Validate().ok());
  // w survived under v.
  const NodeId new_v = result.mapping.at(v);
  EXPECT_EQ(result.tree.ChildCount(new_v), 1u);
  // The q sibling survived.
  bool has_q = false;
  for (NodeId n : result.tree.PreOrder()) {
    has_q |= result.tree.LabelName(n) == "q";
  }
  EXPECT_TRUE(has_q);
}

TEST_F(ReparentTest, Lemma9NoNewResults) {
  // Reparenting must not create result nodes that were not results before
  // (other than fresh alpha nodes) — Lemma 9.
  Tree t = Xml("<r><x><y><z><m><b/></m></z></y></x></r>", symbols_);
  const Pattern p = Xp("r//b", symbols_);
  NodeId b = kNullNode;
  for (NodeId n : t.PreOrder()) {
    if (t.LabelName(n) == "b") b = n;
  }
  const std::vector<NodeId> before = Evaluate(p, t);
  const ReparentResult result =
      Reparent(t, t.root(), b, StarLength(p), symbols_->Fresh("alpha"));
  const std::vector<NodeId> after = Evaluate(p, result.tree);
  for (NodeId n : after) {
    // Every result of the reparented tree maps back to an old result.
    bool is_old = false;
    for (NodeId old : before) {
      auto it = result.mapping.find(old);
      if (it != result.mapping.end() && it->second == n) is_old = true;
    }
    EXPECT_TRUE(is_old);
  }
}

TEST_F(ReparentTest, ShrinkInsertWitnessPreservesConflict) {
  // Build a conflict witness, inflate it with junk, shrink it back.
  const Pattern read = Xp("x//C", symbols_);
  const Pattern ins = Xp("x/B", symbols_);
  Tree x = Xml("<C/>", symbols_);
  // Inflated witness: long chains and irrelevant branches around x/B.
  Tree w = Xml(
      "<x>"
      "<junk><junk><junk/></junk></junk>"
      "<B><deep><deep><deep><deep/></deep></deep></deep></B>"
      "<noise/>"
      "</x>",
      symbols_);
  ASSERT_TRUE(IsReadInsertWitness(read, ins, x, w, ConflictSemantics::kNode));
  Result<Tree> shrunk = ShrinkReadInsertWitness(read, ins, x, w);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status();
  EXPECT_LE(shrunk->size(), w.size());
  EXPECT_TRUE(
      IsReadInsertWitness(read, ins, x, *shrunk, ConflictSemantics::kNode));
  // The junk subtrees are gone: only the root and the B path remain.
  EXPECT_LE(shrunk->size(), 2u);
}

TEST_F(ReparentTest, ShrinkDeleteWitnessPreservesConflict) {
  const Pattern read = Xp("a//b", symbols_);
  const Pattern del = Xp("a//c", symbols_);
  Tree w = Xml(
      "<a><pad><pad/></pad>"
      "<c><mid><mid><mid><b/></mid></mid></mid></c></a>",
      symbols_);
  ASSERT_TRUE(IsReadDeleteWitness(read, del, w, ConflictSemantics::kNode));
  Result<Tree> shrunk = ShrinkReadDeleteWitness(read, del, w);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status();
  EXPECT_LE(shrunk->size(), w.size());
  EXPECT_TRUE(
      IsReadDeleteWitness(read, del, *shrunk, ConflictSemantics::kNode));
}

TEST_F(ReparentTest, ShrinkRejectsNonWitness) {
  const Pattern read = Xp("a//b", symbols_);
  const Pattern del = Xp("a//zz", symbols_);
  Tree w = Xml("<a><b/></a>", symbols_);
  Result<Tree> shrunk = ShrinkReadDeleteWitness(read, del, w);
  EXPECT_FALSE(shrunk.ok());
  EXPECT_EQ(shrunk.status().code(), StatusCode::kInvalidArgument);
}

/// Property sweep: take detector-produced witnesses, inflate them with
/// long chains, shrink, and check the result is a verified witness within
/// the paper's size ballpark (Lemma 11).
class ShrinkPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ShrinkPropertyTest, ShrunkenWitnessesStaySmallAndValid) {
  auto symbols = NewSymbols();
  Rng rng(12000 + GetParam());
  PatternGenOptions options;
  options.size = 3;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);

  for (int iter = 0; iter < 10; ++iter) {
    const Pattern read = gen.GenerateLinear(&rng);
    const Pattern del = gen.GenerateLinear(&rng);
    if (del.output() == del.root()) continue;
    Result<ConflictReport> detect = DetectLinearReadDeleteConflict(
        read, del, ConflictSemantics::kNode);
    ASSERT_TRUE(detect.ok());
    if (!detect->conflict()) continue;

    // Inflate: hang random chains off every node of the witness.
    Tree inflated = CopyTree(*detect->witness);
    const Label pad = symbols->Intern("pad");
    for (NodeId n : inflated.PreOrder()) {
      NodeId at = n;
      const size_t chain = rng.NextBounded(4);
      for (size_t i = 0; i < chain; ++i) at = inflated.AddChild(at, pad);
    }
    if (!IsReadDeleteWitness(read, del, inflated,
                             ConflictSemantics::kNode)) {
      // Padding with fresh-labeled nodes cannot remove results, but if
      // wildcard deletes now fire differently, skip this case.
      continue;
    }
    Result<Tree> shrunk = ShrinkReadDeleteWitness(read, del, inflated);
    ASSERT_TRUE(shrunk.ok()) << shrunk.status() << " seed=" << GetParam();
    EXPECT_TRUE(
        IsReadDeleteWitness(read, del, *shrunk, ConflictSemantics::kNode));
    const size_t bound =
        read.size() * del.size() * (StarLength(read) + 3) + read.size();
    EXPECT_LE(shrunk->size(), bound) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShrinkPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace xmlup
