#include "common/status.h"

#include <sstream>

#include "common/result.h"
#include "gtest/gtest.h"

namespace xmlup {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad pattern");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad pattern");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad pattern");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("thing");
  EXPECT_EQ(os.str(), "NotFound: thing");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  XMLUP_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> inner_fail = Quarter(6);  // 6/2=3 is odd
  EXPECT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xmlup
