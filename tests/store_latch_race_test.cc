// TSan-targeted regression tests for the PatternStore's two call_once
// latches: the compiled-automata latch behind compiled() and the
// type-summary latch behind type_summary(). Both promise "first caller
// builds, everyone else waits, all callers observe the same object" —
// the races this file drives are exactly the ones the latches exist to
// close, so a latch regression shows up here as a TSan report (or as the
// accounting/identity assertions below firing).
//
// The threading pattern is deliberate: a start gate (threads spin on an
// atomic until all are created) maximizes the chance that every thread
// reaches the cold latch in the same window, on 1-core CI machines too.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dtd/dtd.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "pattern/pattern_store.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

constexpr size_t kThreads = 8;

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().GetCounter(name).value();
}

/// Runs `body(t)` on kThreads threads released together through a spin
/// gate, and joins them (the join is the happens-before edge every
/// post-loop assertion relies on).
template <typename Body>
void RunRaced(Body body) {
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) {
      }
      body(t);
    });
  }
  while (ready.load() != kThreads) {
  }
  go.store(true);
  for (std::thread& thread : threads) thread.join();
}

std::shared_ptr<const Dtd> CatalogDtd(
    const std::shared_ptr<SymbolTable>& symbols) {
  return std::make_shared<const Dtd>(
      Dtd::Parse("root catalog\n"
                 "allow catalog : book\n"
                 "allow book : title stock\n"
                 "seal title\n",
                 symbols)
          .value());
}

TEST(StoreLatchRaceTest, ColdCompiledLatchBuildsOncePerEntry) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);

  std::vector<PatternRef> refs;
  for (int i = 0; i < 6; ++i) {
    refs.push_back(store->Intern(
        Xp("catalog/book" + std::to_string(i) + "//stock", symbols)));
  }

  const uint64_t misses_before = CounterValue("store.nfa.misses");

  // Every thread touches every cold entry; the per-entry latch must build
  // each CompiledPattern exactly once and hand all threads that object.
  std::vector<std::vector<const CompiledPattern*>> seen(kThreads);
  RunRaced([&](size_t t) {
    for (const PatternRef ref : refs) {
      seen[t].push_back(&store->compiled(ref));
    }
  });

  for (size_t t = 1; t < kThreads; ++t) {
    ASSERT_EQ(seen[t].size(), seen[0].size());
    for (size_t i = 0; i < refs.size(); ++i) {
      EXPECT_EQ(seen[t][i], seen[0][i])
          << "thread " << t << " saw a different CompiledPattern for ref "
          << i << " — the once-latch built twice";
    }
  }
  // Miss accounting doubles as build-once proof: one miss per entry, no
  // matter how many threads raced the cold latch.
  EXPECT_EQ(CounterValue("store.nfa.misses") - misses_before, refs.size());
}

TEST(StoreLatchRaceTest, ColdTypeSummaryLatchBuildsOncePerEntry) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  auto dtd = CatalogDtd(symbols);

  std::vector<PatternRef> refs;
  for (int i = 0; i < 6; ++i) {
    refs.push_back(store->Intern(
        Xp("catalog/book[.//title" + std::to_string(i) + "]", symbols)));
  }

  const uint64_t misses_before = CounterValue("store.types.misses");

  std::vector<std::vector<const TypeSummary*>> seen(kThreads);
  RunRaced([&](size_t t) {
    for (const PatternRef ref : refs) {
      seen[t].push_back(&store->type_summary(ref, *dtd));
    }
  });

  for (size_t t = 1; t < kThreads; ++t) {
    for (size_t i = 0; i < refs.size(); ++i) {
      EXPECT_EQ(seen[t][i], seen[0][i])
          << "thread " << t << " saw a different TypeSummary for ref " << i;
    }
  }
  EXPECT_EQ(CounterValue("store.types.misses") - misses_before, refs.size());
}

TEST(StoreLatchRaceTest, BothLatchesRaceIndependentlyOnOneEntry) {
  // Half the threads chase the compiled latch, half the type latch, all on
  // the same single cold entry — the two latches share the Entry but must
  // not serialize or corrupt each other.
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  auto dtd = CatalogDtd(symbols);
  const PatternRef ref = store->Intern(Xp("catalog//stock", symbols));

  const uint64_t nfa_misses_before = CounterValue("store.nfa.misses");
  const uint64_t type_misses_before = CounterValue("store.types.misses");

  std::vector<const CompiledPattern*> compiled(kThreads, nullptr);
  std::vector<const TypeSummary*> summaries(kThreads, nullptr);
  RunRaced([&](size_t t) {
    if (t % 2 == 0) {
      compiled[t] = &store->compiled(ref);
      summaries[t] = &store->type_summary(ref, *dtd);
    } else {
      summaries[t] = &store->type_summary(ref, *dtd);
      compiled[t] = &store->compiled(ref);
    }
  });

  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(compiled[t], compiled[0]);
    EXPECT_EQ(summaries[t], summaries[0]);
  }
  EXPECT_EQ(CounterValue("store.nfa.misses") - nfa_misses_before, 1u);
  EXPECT_EQ(CounterValue("store.types.misses") - type_misses_before, 1u);
}

TEST(StoreLatchRaceTest, RacedInternsDeduplicateAndKeepStoreSizeStable) {
  // Interning the same pattern set from every thread must yield identical
  // refs and leave size() == the number of distinct patterns: the
  // double-checked interning path and the EntryTable publish path (the
  // size_ release / acquire edge documented in pattern_store.cc) under
  // contention.
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);

  constexpr int kDistinct = 12;
  std::vector<std::vector<PatternRef>> refs(kThreads);
  RunRaced([&](size_t t) {
    for (int i = 0; i < kDistinct; ++i) {
      const std::string xpath = "a/b" + std::to_string(i) + "//c";
      refs[t].push_back(store->Intern(Xp(xpath, symbols)));
      // Immediately read back through the lock-free path: a stale chunk
      // pointer or unpublished entry is a TSan hit / crash here.
      (void)store->pattern(refs[t].back());
      (void)store->canonical_code(refs[t].back());
    }
  });

  EXPECT_EQ(store->size(), static_cast<size_t>(kDistinct));
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(refs[t], refs[0]);
  }
}

}  // namespace
}  // namespace xmlup
