// Larger-scale sanity checks: the library's core paths on documents with
// hundreds of thousands of nodes. These protect against accidental
// super-linear regressions the micro-tests would not notice.

#include "common/random.h"
#include "conflict/read_delete.h"
#include "conflict/read_insert.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "ops/operations.h"
#include "tests/test_util.h"
#include "workload/catalog_generator.h"
#include "workload/tree_generator.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

TEST(StressTest, LargeCatalogEvaluationAndUpdate) {
  auto symbols = NewSymbols();
  Rng rng(1);
  CatalogOptions options;
  options.num_books = 20000;
  options.low_fraction = 0.25;
  Tree catalog = GenerateCatalog(symbols, options, &rng);
  EXPECT_GT(catalog.size(), 100000u);
  ASSERT_TRUE(catalog.Validate().ok());

  const Pattern condition = Xp("catalog/book[.//low]", symbols);
  const std::vector<NodeId> low = Evaluate(condition, catalog);
  EXPECT_GT(low.size(), 3000u);
  EXPECT_LT(low.size(), 7000u);

  Tree restock(symbols);
  restock.CreateRoot(symbols->Intern("restock"));
  InsertOp insert(condition, std::make_shared<const Tree>(std::move(restock)));
  const InsertOp::Applied applied = insert.ApplyInPlace(&catalog);
  EXPECT_EQ(applied.insertion_points.size(), low.size());
  EXPECT_TRUE(catalog.Validate().ok());

  Result<DeleteOp> drop = DeleteOp::Make(Xp("catalog/book[.//high]", symbols));
  ASSERT_TRUE(drop.ok());
  drop->ApplyInPlace(&catalog);
  ASSERT_TRUE(catalog.Validate().ok());
  // Every remaining book is a restocked low-quantity book.
  EXPECT_EQ(Evaluate(Xp("catalog/book", symbols), catalog).size(),
            low.size());
}

TEST(StressTest, LargeXmlRoundTrip) {
  auto symbols = NewSymbols();
  Rng rng(2);
  TreeGenOptions options;
  options.target_size = 150000;
  options.max_depth = 40;
  options.max_children = 10;
  options.alphabet = RandomTreeGenerator::MakeAlphabet(symbols.get(), 12);
  RandomTreeGenerator gen(symbols, options);
  const Tree original = gen.Generate(&rng);
  const std::string xml = WriteXml(original);
  Result<Tree> reparsed = ParseXml(xml, symbols);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), original.size());
  EXPECT_TRUE(OrderedEqual(original, *reparsed));
}

TEST(StressTest, DeepChainEvaluation) {
  // Depth-100000 chain: iterative algorithms must not overflow the stack.
  auto symbols = NewSymbols();
  Tree chain(symbols);
  NodeId node = chain.CreateRoot(symbols->Intern("c"));
  for (int i = 0; i < 100000; ++i) node = chain.AddChild(node, symbols->Intern("c"));
  const Pattern deep = Xp("c//c", symbols);
  EXPECT_EQ(Evaluate(deep, chain).size(), 100000u);
  EXPECT_EQ(CanonicalCode(chain).size(), 100001u * 3);
  Tree copy = CopyTree(chain);
  EXPECT_EQ(copy.size(), chain.size());
}

TEST(StressTest, DetectionWithLargePatterns) {
  // 512-node linear patterns: detection stays comfortably polynomial.
  auto symbols = NewSymbols();
  Pattern read(symbols);
  PatternNodeId n = read.CreateRoot(symbols->Intern("a"));
  for (int i = 0; i < 511; ++i) {
    n = read.AddChild(n, i % 7 == 0 ? kWildcardLabel : symbols->Intern("s"),
                      i % 3 == 0 ? Axis::kDescendant : Axis::kChild);
  }
  read.SetOutput(n);
  Pattern del(symbols);
  n = del.CreateRoot(symbols->Intern("a"));
  for (int i = 0; i < 255; ++i) {
    n = del.AddChild(n, symbols->Intern("s"), Axis::kDescendant);
  }
  del.SetOutput(n);
  Result<ConflictReport> report = DetectLinearReadDeleteConflict(
      read, del, ConflictSemantics::kNode, MatcherKind::kDp);
  ASSERT_TRUE(report.ok()) << report.status();
  if (report->conflict()) {
    ASSERT_TRUE(report->witness.has_value());
    EXPECT_TRUE(IsReadDeleteWitness(read, del, *report->witness,
                                    ConflictSemantics::kNode));
  }
}

}  // namespace
}  // namespace xmlup
