#include "common/string_util.h"

#include "gtest/gtest.h"

namespace xmlup {
namespace {

TEST(SplitTest, Basic) {
  const auto pieces = Split("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(SplitTest, KeepsEmptyPieces) {
  const auto pieces = Split(",a,", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "");
  EXPECT_EQ(pieces[1], "a");
  EXPECT_EQ(pieces[2], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyPiece) {
  const auto pieces = Split("", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"x", "y", "z"}, "/"), "x/y/z");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"solo"}, "/"), "solo");
}

TEST(StripWhitespaceTest, Basic) {
  EXPECT_EQ(StripWhitespace("  hi \n\t"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("catalog", "cat"));
  EXPECT_FALSE(StartsWith("cat", "catalog"));
  EXPECT_TRUE(EndsWith("catalog", "log"));
  EXPECT_FALSE(EndsWith("log", "catalog"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(XmlEscapeTest, EscapesSpecials) {
  EXPECT_EQ(XmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

}  // namespace
}  // namespace xmlup
