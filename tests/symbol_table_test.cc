#include "xml/symbol_table.h"

#include "gtest/gtest.h"

namespace xmlup {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  const Label a = table.Intern("book");
  EXPECT_EQ(table.Intern("book"), a);
  EXPECT_EQ(table.Name(a), "book");
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTableTest, DistinctNamesDistinctLabels) {
  SymbolTable table;
  const Label a = table.Intern("a");
  const Label b = table.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, LookupWithoutIntern) {
  SymbolTable table;
  EXPECT_EQ(table.Lookup("ghost"), kInvalidLabel);
  table.Intern("ghost");
  EXPECT_NE(table.Lookup("ghost"), kInvalidLabel);
}

TEST(SymbolTableTest, FreshNeverCollides) {
  SymbolTable table;
  table.Intern("alpha$0");  // occupy the first candidate
  const Label f1 = table.Fresh("alpha");
  const Label f2 = table.Fresh("alpha");
  EXPECT_NE(f1, f2);
  EXPECT_NE(table.Name(f1), "alpha$0");
  EXPECT_NE(table.Name(f1), table.Name(f2));
}

TEST(SymbolTableTest, FreshSymbolsAreInterned) {
  SymbolTable table;
  const Label f = table.Fresh("z");
  EXPECT_EQ(table.Lookup(table.Name(f)), f);
}

TEST(SymbolTableTest, SharedSingletonIsStable) {
  const auto& a = SymbolTable::Shared();
  const auto& b = SymbolTable::Shared();
  EXPECT_EQ(a.get(), b.get());
}

}  // namespace
}  // namespace xmlup
