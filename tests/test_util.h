#ifndef XMLUP_TESTS_TEST_UTIL_H_
#define XMLUP_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <string_view>

#include "gtest/gtest.h"
#include "pattern/xpath_parser.h"
#include "xml/symbol_table.h"
#include "xml/tree.h"
#include "xml/xml_parser.h"

namespace xmlup {
namespace testing_util {

/// A fresh symbol table per fixture keeps label ids deterministic across
/// test orderings.
inline std::shared_ptr<SymbolTable> NewSymbols() {
  return std::make_shared<SymbolTable>();
}

/// Parses XML or aborts the test binary (for hard-coded test documents).
inline Tree Xml(std::string_view xml,
                const std::shared_ptr<SymbolTable>& symbols) {
  Result<Tree> tree = ParseXml(xml, symbols);
  if (!tree.ok()) {
    ADD_FAILURE() << "ParseXml failed: " << tree.status();
  }
  EXPECT_TRUE(tree.ok());
  return std::move(tree).value();
}

/// Parses an XPath or fails the test.
inline Pattern Xp(std::string_view xpath,
                  const std::shared_ptr<SymbolTable>& symbols) {
  return MustParseXPath(xpath, symbols);
}

}  // namespace testing_util
}  // namespace xmlup

#endif  // XMLUP_TESTS_TEST_UTIL_H_
