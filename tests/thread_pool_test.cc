#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include "gtest/gtest.h"

namespace xmlup {
namespace {

TEST(ThreadPoolTest, InlineModeRunsOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 0u);
  int runs = 0;
  pool.Submit([&] { ++runs; });
  // Inline mode executes inside Submit: no Wait needed.
  EXPECT_EQ(runs, 1);
  pool.Wait();  // no-op, must not hang
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<int> runs{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { runs.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  pool.Submit([&] { runs.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(runs.load(), 1);
  pool.Submit([&] { runs.fetch_add(1); });
  pool.Submit([&] { runs.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(runs.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { runs.fetch_add(1); });
    }
  }
  // Destruction joins workers only after the queue is drained.
  EXPECT_EQ(runs.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ParallelFor(&pool, hits.size(),
                [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForNullPoolRunsInline) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(&pool, 0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, DefaultThreadCountAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace xmlup
