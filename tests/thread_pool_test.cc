#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace xmlup {
namespace {

TEST(ThreadPoolTest, InlineModeRunsOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 0u);
  int runs = 0;
  pool.Submit([&] { ++runs; });
  // Inline mode executes inside Submit: no Wait needed.
  EXPECT_EQ(runs, 1);
  pool.Wait();  // no-op, must not hang
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<int> runs{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { runs.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  pool.Submit([&] { runs.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(runs.load(), 1);
  pool.Submit([&] { runs.fetch_add(1); });
  pool.Submit([&] { runs.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(runs.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { runs.fetch_add(1); });
    }
  }
  // Destruction joins workers only after the queue is drained.
  EXPECT_EQ(runs.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ParallelFor(&pool, hits.size(),
                [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForNullPoolRunsInline) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool ran = false;
  // count == 0 must return without touching the pool: no body run, no
  // no-op worker task submitted (the counter would tick if one were).
  obs::Counter& tasks =
      obs::MetricsRegistry::Default().GetCounter("thread_pool.tasks");
  const uint64_t tasks_before = tasks.value();
  ParallelFor(&pool, 0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(tasks.value(), tasks_before);
}

TEST(ThreadPoolTest, DefaultThreadCountAtLeastOne) {
  const size_t count = ThreadPool::DefaultThreadCount();
  EXPECT_GE(count, 1u);
  // Never above the hardware (when the hardware count is known): the
  // affinity mask can only restrict, not invent cores.
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware > 0) {
    EXPECT_LE(count, static_cast<size_t>(hardware));
  }
}

#if defined(__linux__)
TEST(ThreadPoolTest, DefaultThreadCountRespectsAffinityMask) {
  cpu_set_t original;
  ASSERT_EQ(sched_getaffinity(0, sizeof(original), &original), 0);
  const size_t allowed = static_cast<size_t>(CPU_COUNT(&original));
  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), std::min(allowed, hardware));

  // Pin this thread to a single CPU (the cgroup-limited-container shape)
  // and the default must follow the mask, not the host core count.
  int first_cpu = -1;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &original)) {
      first_cpu = cpu;
      break;
    }
  }
  ASSERT_GE(first_cpu, 0);
  cpu_set_t single;
  CPU_ZERO(&single);
  CPU_SET(first_cpu, &single);
  if (sched_setaffinity(0, sizeof(single), &single) == 0) {
    EXPECT_EQ(ThreadPool::DefaultThreadCount(), 1u);
    ASSERT_EQ(sched_setaffinity(0, sizeof(original), &original), 0);
  }
}
#endif

TEST(ThreadPoolTest, QueueDepthAggregatesAcrossConcurrentPools) {
  // The queue_depth gauge is process-global; two live pools must not
  // last-writer-win each other (the old Set() bug): with deltas the
  // aggregate is the true total queued across pools.
  obs::Gauge& depth =
      obs::MetricsRegistry::Default().GetGauge("thread_pool.queue_depth");
  depth.Reset();
  std::atomic<int> blockers_running{0};
  std::atomic<bool> release{false};
  {
    ThreadPool pool_a(2);
    ThreadPool pool_b(2);
    auto blocker = [&] {
      blockers_running.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    for (int i = 0; i < 2; ++i) pool_a.Submit(blocker);
    for (int i = 0; i < 2; ++i) pool_b.Submit(blocker);
    while (blockers_running.load() < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Every worker is pinned in a blocker, so these all sit queued: the
    // gauge must show the cross-pool total (Set() would report 3 or 5).
    for (int i = 0; i < 5; ++i) pool_a.Submit([] {});
    for (int i = 0; i < 3; ++i) pool_b.Submit([] {});
    EXPECT_EQ(depth.value(), 8);
    release.store(true);
    pool_a.Wait();
    pool_b.Wait();
    EXPECT_EQ(depth.value(), 0);
  }
}

TEST(ThreadPoolTest, OnWorkerThreadIdentifiesPoolWorkers) {
  // The predicate behind Engine's pool-worker re-entrancy CHECK: false on
  // ordinary threads (and in inline mode, where Submit runs the task on
  // the caller), true inside a real worker.
  EXPECT_FALSE(ThreadPool::OnWorkerThread());

  ThreadPool inline_pool(1);
  bool inline_seen = true;
  inline_pool.Submit([&] { inline_seen = ThreadPool::OnWorkerThread(); });
  inline_pool.Wait();
  EXPECT_FALSE(inline_seen);

  ThreadPool pool(2);
  std::atomic<int> on_worker{0};
  constexpr int kTasks = 8;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (ThreadPool::OnWorkerThread()) on_worker.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(on_worker.load(), kTasks);
  // The flag is thread-local, not sticky process state.
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

#ifndef NDEBUG
TEST(ThreadPoolDeathTest, NestedParallelForIsUnsupported) {
  // A ParallelFor from inside a pool worker would Wait() on the pool that
  // is running it — deadlock once every worker blocks. The debug build
  // refuses loudly instead of hanging. (Nested *inline* loops — null
  // pool — remain fine.)
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        ParallelFor(&pool, 1, [&](size_t) {
          ParallelFor(&pool, 1, [](size_t) {});
        });
      },
      "ParallelFor called from inside a ThreadPool worker");
}
#endif

}  // namespace
}  // namespace xmlup
