// Golden-file test for the trace exporters: a fixed span scenario driven
// by a fake clock must serialize to byte-identical Chrome trace JSON and
// stats JSON. If an exporter change is intentional, update the goldens in
// tests/goldens/ (the failure message prints the actual output).

#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "obs/trace.h"

namespace xmlup {
namespace obs {
namespace {

std::string ReadGolden(const std::string& name) {
  const std::string path = std::string(XMLUP_TEST_SRCDIR) + "/goldens/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  // Tolerate a trailing newline added by editors / POSIX conventions.
  while (!content.empty() && content.back() == '\n') content.pop_back();
  return content;
}

/// The fixed scenario: a top-level span, a nested child, and one batch of
/// worker-buffered events published through MergeThreadEvents. All times
/// come from the fake clock; the main-thread tid is 0 because this test
/// binary runs the scenario on the first thread that ever asks for an id.
void RecordScenario(TraceRecorder* recorder) {
  uint64_t now = 0;
  recorder->SetClockForTest([&now] { return now; });
  recorder->set_enabled(true);
  {
    TraceSpan load(*recorder, "load");
    now += 40;
  }
  {
    TraceSpan detect(*recorder, "detect");
    now += 10;
    {
      TraceSpan search(*recorder, "search");
      now += 25;
    }
    now += 25;
  }
  recorder->MergeThreadEvents({{"worker", 60, 30, 7, 0}});
}

TEST(TraceGoldenTest, ChromeTraceJsonMatchesGolden) {
  ASSERT_EQ(CurrentThreadId(), 0u)
      << "scenario must run on the process's first traced thread";
  TraceRecorder recorder;
  RecordScenario(&recorder);
  EXPECT_EQ(recorder.ToChromeTraceJson(), ReadGolden("trace_chrome.json"))
      << "actual:\n"
      << recorder.ToChromeTraceJson();
}

TEST(TraceGoldenTest, StatsJsonMatchesGolden) {
  TraceRecorder recorder;
  RecordScenario(&recorder);
  EXPECT_EQ(recorder.ToStatsJson(), ReadGolden("trace_stats.json"))
      << "actual:\n"
      << recorder.ToStatsJson();
}

}  // namespace
}  // namespace obs
}  // namespace xmlup
