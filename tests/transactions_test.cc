#include "conflict/transactions.h"

#include <utility>

#include "common/random.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/tree_generator.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class TransactionsTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  UpdateOp Ins(const char* pattern, const char* x) {
    return UpdateOp::MakeInsert(
        Xp(pattern, symbols_),
        std::make_shared<const Tree>(Xml(x, symbols_)));
  }
  UpdateOp Del(const char* pattern) {
    return std::move(UpdateOp::MakeDelete(Xp(pattern, symbols_)).value());
  }
};

TEST_F(TransactionsTest, DisjointTransactionsCertified) {
  // t1 works under shop/a, t2 under shop/b: every cross pair is
  // label-disjoint, so the whole pair of transactions certifies.
  std::vector<UpdateOp> t1;
  t1.push_back(Ins("shop/a", "<m/>"));
  t1.push_back(Del("shop/a/m"));
  std::vector<UpdateOp> t2;
  t2.push_back(Ins("shop/b", "<n/>"));
  t2.push_back(Del("shop/b/n"));
  Result<TransactionReport> report = CertifyTransactionsCommute(t1, t2);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->certified);
  EXPECT_EQ(report->pairs_checked, 4u);
}

TEST_F(TransactionsTest, LabelDisjointTransactionsCertify) {
  std::vector<UpdateOp> t1;
  t1.push_back(Ins("shop/a", "<m/>"));
  std::vector<UpdateOp> t2;
  t2.push_back(Ins("shop/b", "<n/>"));
  t2.push_back(Del("shop/c"));
  Result<TransactionReport> report = CertifyTransactionsCommute(t1, t2);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->certified);
  EXPECT_EQ(report->pairs_checked, 2u);
}

TEST_F(TransactionsTest, ConflictingPairStopsEarlyWithIndices) {
  std::vector<UpdateOp> t1;
  t1.push_back(Ins("shop/x", "<m/>"));   // harmless
  t1.push_back(Ins("shop", "<b/>"));     // enables t2[1]
  std::vector<UpdateOp> t2;
  t2.push_back(Del("shop/zz"));          // harmless
  t2.push_back(Ins("shop/b", "<c/>"));   // fires on t1[1]'s output
  Result<TransactionReport> report = CertifyTransactionsCommute(t1, t2);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->certified);
  EXPECT_EQ(report->t1_index, 1u);
  EXPECT_EQ(report->t2_index, 1u);
  EXPECT_FALSE(report->detail.empty());
}

TEST_F(TransactionsTest, DefaultModeStopsAtFirstUncertifiedPair) {
  // Two uncertified cross pairs: (0,0) and (1,1). The early-exit default
  // must stop at (0,0) — one pair checked, one pair recorded.
  std::vector<UpdateOp> t1;
  t1.push_back(Ins("shop", "<b/>"));
  t1.push_back(Ins("shop", "<d/>"));
  std::vector<UpdateOp> t2;
  t2.push_back(Ins("shop/b", "<c/>"));
  t2.push_back(Ins("shop/d", "<e/>"));
  Result<TransactionReport> report = CertifyTransactionsCommute(t1, t2);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->certified);
  EXPECT_EQ(report->pairs_checked, 1u);
  ASSERT_EQ(report->uncertified.size(), 1u);
  EXPECT_EQ(report->uncertified[0], std::make_pair(size_t{0}, size_t{0}));
  EXPECT_EQ(report->t1_index, 0u);
  EXPECT_EQ(report->t2_index, 0u);
}

TEST_F(TransactionsTest, ExhaustiveModeRecordsEveryUncertifiedPair) {
  // Same transactions; exhaustive mode scans all |T1|·|T2| pairs and
  // records both bad ones while the first-pair diagnostics stay put.
  std::vector<UpdateOp> t1;
  t1.push_back(Ins("shop", "<b/>"));
  t1.push_back(Ins("shop", "<d/>"));
  std::vector<UpdateOp> t2;
  t2.push_back(Ins("shop/b", "<c/>"));
  t2.push_back(Ins("shop/d", "<e/>"));
  DetectorOptions options;
  options.exhaustive = true;
  Result<TransactionReport> report =
      CertifyTransactionsCommute(t1, t2, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->certified);
  EXPECT_EQ(report->pairs_checked, 4u);
  ASSERT_EQ(report->uncertified.size(), 2u);
  EXPECT_EQ(report->uncertified[0], std::make_pair(size_t{0}, size_t{0}));
  EXPECT_EQ(report->uncertified[1], std::make_pair(size_t{1}, size_t{1}));
  EXPECT_EQ(report->t1_index, 0u);
  EXPECT_EQ(report->t2_index, 0u);
  EXPECT_FALSE(report->detail.empty());
}

TEST_F(TransactionsTest, ExhaustiveModeOnCertifiedPairIsEquivalent) {
  // On certified transactions, exhaustive and default modes are
  // indistinguishable: full scan, no uncertified pairs.
  std::vector<UpdateOp> t1;
  t1.push_back(Ins("shop/a", "<m/>"));
  t1.push_back(Del("shop/a/m"));
  std::vector<UpdateOp> t2;
  t2.push_back(Ins("shop/b", "<n/>"));
  DetectorOptions options;
  options.exhaustive = true;
  Result<TransactionReport> report =
      CertifyTransactionsCommute(t1, t2, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->certified);
  EXPECT_EQ(report->pairs_checked, 2u);
  EXPECT_TRUE(report->uncertified.empty());
}

TEST_F(TransactionsTest, CertifiedTransactionsCommuteInPractice) {
  std::vector<UpdateOp> t1;
  t1.push_back(Ins("shop/a", "<m/>"));
  t1.push_back(Del("shop/a/old"));
  std::vector<UpdateOp> t2;
  t2.push_back(Ins("shop/b", "<n/>"));
  Result<TransactionReport> report = CertifyTransactionsCommute(t1, t2);
  ASSERT_TRUE(report.ok());
  if (!report->certified) GTEST_SKIP() << "certificate did not apply";

  Rng rng(5);
  TreeGenOptions options;
  options.target_size = 30;
  options.alphabet = {symbols_->Intern("shop"), symbols_->Intern("a"),
                      symbols_->Intern("b"), symbols_->Intern("old"),
                      symbols_->Intern("m")};
  RandomTreeGenerator trees(symbols_, options);
  for (int i = 0; i < 10; ++i) {
    const Tree base = trees.Generate(&rng);
    Tree order12 = CopyTree(base);
    for (const UpdateOp& op : t1) op.ApplyInPlace(&order12);
    for (const UpdateOp& op : t2) op.ApplyInPlace(&order12);
    Tree order21 = CopyTree(base);
    for (const UpdateOp& op : t2) op.ApplyInPlace(&order21);
    for (const UpdateOp& op : t1) op.ApplyInPlace(&order21);
    EXPECT_EQ(CanonicalCode(order12), CanonicalCode(order21)) << "i=" << i;
  }
}

TEST_F(TransactionsTest, EmptyTransactionsCertifyTrivially) {
  Result<TransactionReport> report =
      CertifyTransactionsCommute({}, {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->certified);
  EXPECT_EQ(report->pairs_checked, 0u);
}

}  // namespace
}  // namespace xmlup
