#include "xml/tree.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/tree_algos.h"
#include "xml/tree_builder.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;

class TreeTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
  Label L(const char* name) { return symbols_->Intern(name); }
};

TEST_F(TreeTest, SingleNode) {
  Tree t(symbols_);
  EXPECT_FALSE(t.has_root());
  const NodeId root = t.CreateRoot(L("a"));
  EXPECT_TRUE(t.has_root());
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.LabelName(root), "a");
  EXPECT_EQ(t.parent(root), kNullNode);
  EXPECT_TRUE(t.Validate().ok());
}

TEST_F(TreeTest, ChildrenKeepInsertionOrder) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId c1 = t.AddChild(root, L("a"));
  const NodeId c2 = t.AddChild(root, L("b"));
  const NodeId c3 = t.AddChild(root, L("c"));
  EXPECT_EQ(t.Children(root), (std::vector<NodeId>{c1, c2, c3}));
  EXPECT_EQ(t.ChildCount(root), 3u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST_F(TreeTest, AncestorAndDepth) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId a = t.AddChild(root, L("a"));
  const NodeId b = t.AddChild(a, L("b"));
  const NodeId sibling = t.AddChild(root, L("s"));
  EXPECT_TRUE(t.IsProperAncestor(root, b));
  EXPECT_TRUE(t.IsProperAncestor(a, b));
  EXPECT_FALSE(t.IsProperAncestor(b, b));
  EXPECT_FALSE(t.IsProperAncestor(sibling, b));
  EXPECT_FALSE(t.IsProperAncestor(b, a));
  EXPECT_EQ(t.Depth(root), 0u);
  EXPECT_EQ(t.Depth(b), 2u);
}

TEST_F(TreeTest, DeleteSubtreeTombstonesAndUnlinks) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId a = t.AddChild(root, L("a"));
  const NodeId a1 = t.AddChild(a, L("x"));
  const NodeId b = t.AddChild(root, L("b"));
  EXPECT_EQ(t.size(), 4u);
  t.DeleteSubtree(a);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.alive(a));
  EXPECT_FALSE(t.alive(a1));
  EXPECT_TRUE(t.alive(b));
  EXPECT_EQ(t.Children(root), (std::vector<NodeId>{b}));
  // Node ids remain addressable after deletion (stable identity).
  EXPECT_EQ(t.LabelName(a), "a");
  EXPECT_TRUE(t.Validate().ok());
}

TEST_F(TreeTest, DeleteMiddleSiblingKeepsLinks) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId c1 = t.AddChild(root, L("a"));
  const NodeId c2 = t.AddChild(root, L("b"));
  const NodeId c3 = t.AddChild(root, L("c"));
  t.DeleteSubtree(c2);
  EXPECT_EQ(t.Children(root), (std::vector<NodeId>{c1, c3}));
  t.DeleteSubtree(c3);  // delete the tail: last_child must be fixed up
  EXPECT_EQ(t.Children(root), (std::vector<NodeId>{c1}));
  const NodeId c4 = t.AddChild(root, L("d"));
  EXPECT_EQ(t.Children(root), (std::vector<NodeId>{c1, c4}));
  EXPECT_TRUE(t.Validate().ok());
}

TEST_F(TreeTest, GraftCopyIsDeepAndDisjoint) {
  Tree src(symbols_);
  const NodeId sr = src.CreateRoot(L("x"));
  src.AddChild(sr, L("y"));
  src.AddChild(sr, L("z"));

  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId copy1 = t.GraftCopy(root, src, src.root());
  const NodeId copy2 = t.GraftCopy(root, src, src.root());
  EXPECT_EQ(t.size(), 7u);
  EXPECT_NE(copy1, copy2);
  EXPECT_EQ(t.LabelName(copy1), "x");
  EXPECT_EQ(t.ChildCount(copy1), 2u);
  // Source unchanged.
  EXPECT_EQ(src.size(), 3u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST_F(TreeTest, GraftCopyPreservesChildOrder) {
  Tree src(symbols_);
  const NodeId sr = src.CreateRoot(L("x"));
  src.AddChild(sr, L("p"));
  src.AddChild(sr, L("q"));
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId copy = t.GraftCopy(root, src, src.root());
  const std::vector<NodeId> kids = t.Children(copy);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(t.LabelName(kids[0]), "p");
  EXPECT_EQ(t.LabelName(kids[1]), "q");
}

TEST_F(TreeTest, VersionBumpsOnMutation) {
  Tree t(symbols_);
  const uint64_t v0 = t.version();
  const NodeId root = t.CreateRoot(L("r"));
  EXPECT_GT(t.version(), v0);
  const uint64_t v1 = t.version();
  const NodeId c = t.AddChild(root, L("a"));
  EXPECT_GT(t.version(), v1);
  const uint64_t v2 = t.version();
  t.DeleteSubtree(c);
  EXPECT_GT(t.version(), v2);
}

TEST_F(TreeTest, TraversalsCoverLiveNodesOnly) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId a = t.AddChild(root, L("a"));
  t.AddChild(a, L("b"));
  const NodeId c = t.AddChild(root, L("c"));
  t.DeleteSubtree(a);
  const std::vector<NodeId> pre = t.PreOrder();
  EXPECT_EQ(pre, (std::vector<NodeId>{root, c}));
  std::vector<NodeId> post = t.PostOrder();
  EXPECT_EQ(post.back(), root);
  EXPECT_EQ(post.size(), 2u);
}

TEST_F(TreeTest, SubtreeNodes) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId a = t.AddChild(root, L("a"));
  const NodeId b = t.AddChild(a, L("b"));
  t.AddChild(root, L("c"));
  std::vector<NodeId> sub = t.SubtreeNodes(a);
  std::sort(sub.begin(), sub.end());
  EXPECT_EQ(sub, (std::vector<NodeId>{a, b}));
}

TEST_F(TreeTest, CopyTreeProducesIdenticalIds) {
  // Witness-shrinking relies on deterministic copies: copying the same
  // tree twice yields the same NodeId layout.
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId a = t.AddChild(root, L("a"));
  t.AddChild(a, L("b"));
  t.AddChild(root, L("c"));
  std::unordered_map<NodeId, NodeId> map1;
  std::unordered_map<NodeId, NodeId> map2;
  Tree c1 = CopyTree(t, &map1);
  Tree c2 = CopyTree(t, &map2);
  ASSERT_EQ(map1.size(), map2.size());
  for (const auto& [src, dst] : map1) {
    EXPECT_EQ(map2.at(src), dst);
  }
  EXPECT_TRUE(OrderedEqual(c1, c2));
  EXPECT_TRUE(OrderedEqual(c1, t));
}

TEST_F(TreeTest, SnapshotDetectsInsertionAndDeletion) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId a = t.AddChild(root, L("a"));
  const NodeId b = t.AddChild(a, L("b"));
  const SubtreeSnapshot snap = SnapshotSubtree(t, a);
  EXPECT_TRUE(SnapshotUnchanged(t, snap));
  t.AddChild(b, L("new"));
  EXPECT_FALSE(SnapshotUnchanged(t, snap));
}

TEST_F(TreeTest, SnapshotDetectsSubtreeDeletion) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId a = t.AddChild(root, L("a"));
  const NodeId b = t.AddChild(a, L("b"));
  const SubtreeSnapshot snap = SnapshotSubtree(t, a);
  t.DeleteSubtree(b);
  EXPECT_FALSE(SnapshotUnchanged(t, snap));
}

TEST_F(TreeTest, SnapshotUnaffectedByOutsideMutation) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId a = t.AddChild(root, L("a"));
  const NodeId c = t.AddChild(root, L("c"));
  const SubtreeSnapshot snap = SnapshotSubtree(t, a);
  t.AddChild(c, L("x"));
  EXPECT_TRUE(SnapshotUnchanged(t, snap));
}

TEST_F(TreeTest, BuilderBuildsNestedTree) {
  TreeBuilder b(symbols_);
  b.Begin("catalog").Begin("book").Leaf("title").Leaf("quantity").End().End();
  Result<Tree> t = std::move(b).Build();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 4u);
  EXPECT_EQ(t->LabelName(t->root()), "catalog");
}

TEST_F(TreeTest, BuilderImplicitlyClosesRoot) {
  TreeBuilder b(symbols_);
  b.Begin("a").Begin("b");  // neither closed
  Result<Tree> t = std::move(b).Build();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 2u);
}

TEST_F(TreeTest, BuilderRejectsUnbalancedEnd) {
  TreeBuilder b(symbols_);
  b.Begin("a").End().End();
  Result<Tree> t = std::move(b).Build();
  EXPECT_FALSE(t.ok());
}

TEST_F(TreeTest, BuilderRejectsSecondRoot) {
  TreeBuilder b(symbols_);
  b.Begin("a").End().Begin("b");
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST_F(TreeTest, BuildPathTree) {
  Tree path = BuildPathTree(symbols_, {L("a"), L("b"), L("c")});
  EXPECT_EQ(path.size(), 3u);
  NodeId n = path.root();
  EXPECT_EQ(path.LabelName(n), "a");
  n = path.first_child(n);
  EXPECT_EQ(path.LabelName(n), "b");
  n = path.first_child(n);
  EXPECT_EQ(path.LabelName(n), "c");
  EXPECT_EQ(path.first_child(n), kNullNode);
}

TEST_F(TreeTest, CopySubtree) {
  Tree t(symbols_);
  const NodeId root = t.CreateRoot(L("r"));
  const NodeId a = t.AddChild(root, L("a"));
  t.AddChild(a, L("b"));
  Tree sub = CopySubtree(t, a);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.LabelName(sub.root()), "a");
}

}  // namespace
}  // namespace xmlup
