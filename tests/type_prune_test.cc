// Stage 0 of the staged verdict pipeline must be invisible except for
// speed and schema-soundness: a type-pruned pair may only be one that has
// no conflict witness among DTD-conformant documents, and a pair Stage 0
// does not prune must produce a report field-identical to the pre-Stage-0
// detector's. This suite covers the TypeSet lattice, the summary
// computation, the two pruning rules and their deliberate asymmetries, the
// facade/batch/engine integration (accounting invariants, no memo entries
// for pruned pairs), determinism across thread counts on a shared store
// (the TSan leg), and an exhaustive small-pattern sweep checked against
// the conformant-tree oracles in dtd/dtd_conflict.h.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "conflict/batch_detector.h"
#include "conflict/detector.h"
#include "dtd/dtd.h"
#include "dtd/dtd_conflict.h"
#include "dtd/type_summary.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "pattern/pattern_store.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class TypePruneTest : public ::testing::Test {
 protected:
  Label L(const char* name) { return symbols_->Intern(name); }

  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

std::vector<Label> SortedLabels(std::vector<Label> labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// ---------------------------------------------------------------------------
// TypeSet lattice (sorted-vector backing).

TEST_F(TypePruneTest, TypeSetInsertKeepsSortedDedupedLabels) {
  TypeSet s = TypeSet::Empty();
  EXPECT_TRUE(s.empty());
  s.Insert(L("c"));
  s.Insert(L("a"));
  s.Insert(L("b"));
  s.Insert(L("a"));  // duplicate
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.labels().size(), 3u);
  EXPECT_EQ(s.labels(), SortedLabels({L("a"), L("b"), L("c")}));
  EXPECT_TRUE(s.Contains(L("a")));
  EXPECT_TRUE(s.Contains(L("c")));
  EXPECT_FALSE(s.Contains(L("d")));
}

TEST_F(TypePruneTest, TypeSetUnionAndIntersection) {
  TypeSet ab = TypeSet::Of(L("a"));
  ab.Insert(L("b"));
  TypeSet bc = TypeSet::Of(L("c"));
  bc.Insert(L("b"));
  TypeSet d = TypeSet::Of(L("d"));

  EXPECT_TRUE(TypeSet::Intersects(ab, bc));
  EXPECT_TRUE(TypeSet::Intersects(bc, ab));  // symmetric
  EXPECT_FALSE(TypeSet::Intersects(ab, d));
  EXPECT_FALSE(TypeSet::Intersects(d, ab));
  EXPECT_EQ(TypeSet::Intersect(ab, bc), TypeSet::Of(L("b")));

  TypeSet u = ab;
  u.UnionWith(bc);
  EXPECT_EQ(u.labels(), SortedLabels({L("a"), L("b"), L("c")}));

  // Empty is the union identity and the intersection absorber.
  TypeSet e = TypeSet::Empty();
  EXPECT_FALSE(TypeSet::Intersects(e, ab));
  EXPECT_TRUE(TypeSet::Intersect(e, ab).empty());
  e.UnionWith(ab);
  EXPECT_EQ(e, ab);
}

TEST_F(TypePruneTest, TypeSetTopAbsorbs) {
  const TypeSet top = TypeSet::Top();
  EXPECT_TRUE(top.top());
  EXPECT_FALSE(top.empty());
  EXPECT_TRUE(top.Contains(L("anything")));

  TypeSet s = TypeSet::Of(L("a"));
  s.UnionWith(top);
  EXPECT_TRUE(s.top());

  // ⊤ is the intersection identity — but ⊤ ∩ ∅ must stay empty.
  EXPECT_EQ(TypeSet::Intersect(top, TypeSet::Of(L("a"))), TypeSet::Of(L("a")));
  EXPECT_TRUE(TypeSet::Intersect(top, TypeSet::Empty()).empty());
  EXPECT_FALSE(TypeSet::Intersects(top, TypeSet::Empty()));
  EXPECT_TRUE(TypeSet::Intersects(top, top));
  EXPECT_GT(top.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Reachability over the allow-graph.

TEST_F(TypePruneTest, ChildTypesFollowAllowListsAndWidenOnUnsealed) {
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("r"));
  dtd.Allow(L("r"), L("a"));
  dtd.Allow(L("a"), L("a"));
  dtd.Allow(L("a"), L("b"));
  dtd.Seal(L("b"));
  ASSERT_TRUE(dtd.Validate().ok());

  EXPECT_EQ(ChildTypes(dtd, TypeSet::Of(L("r"))), TypeSet::Of(L("a")));
  TypeSet ab = TypeSet::Of(L("a"));
  ab.Insert(L("b"));
  EXPECT_EQ(ChildTypes(dtd, TypeSet::Of(L("a"))), ab);
  EXPECT_TRUE(ChildTypes(dtd, TypeSet::Of(L("b"))).empty());  // sealed leaf
  EXPECT_EQ(ReachPlus(dtd, TypeSet::Of(L("r"))), ab);
  TypeSet rab = ab;
  rab.Insert(L("r"));
  EXPECT_EQ(ReachStar(dtd, TypeSet::Of(L("r"))), rab);

  // An unsealed label accepts any children: one step widens to ⊤.
  Dtd open(symbols_);
  open.SetRootLabel(L("r"));
  open.Allow(L("r"), L("a"));  // a itself never sealed
  EXPECT_TRUE(ChildTypes(open, TypeSet::Of(L("a"))).top());
  EXPECT_TRUE(ReachPlus(open, TypeSet::Of(L("r"))).top());
}

TEST_F(TypePruneTest, SummaryPinsRootAndDetectsDeadPatterns) {
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("r"));
  dtd.Allow(L("r"), L("a"));
  dtd.Allow(L("a"), L("a"));
  dtd.Allow(L("a"), L("b"));
  dtd.Seal(L("b"));

  // Embeddings are root-preserving: a pattern rooted at `b` can never
  // match a conformant document (root label is pinned to r).
  EXPECT_TRUE(ComputeTypeSummary(Xp("b/a", symbols_), dtd).dead);
  // `b` is not allowed directly under `r`.
  EXPECT_TRUE(ComputeTypeSummary(Xp("r/b", symbols_), dtd).dead);

  const TypeSummary alive = ComputeTypeSummary(Xp("r/a", symbols_), dtd);
  EXPECT_FALSE(alive.dead);
  EXPECT_EQ(alive.output_types, TypeSet::Of(L("a")));
  TypeSet ab = TypeSet::Of(L("a"));
  ab.Insert(L("b"));
  EXPECT_EQ(alive.subtree, ab);  // ReachStar({a})
  // touched is node images only for a pure child chain: {r, a}.
  TypeSet ra = TypeSet::Of(L("r"));
  ra.Insert(L("a"));
  EXPECT_EQ(alive.touched, ra);
  // Chain: every node is an ancestor-of-or-self of the output, so
  // insert-sensitivity is just the output's label class.
  EXPECT_EQ(alive.insert_sensitive, TypeSet::Of(L("a")));

  // A descendant edge adds the gap-path types to `touched`.
  const TypeSummary desc = ComputeTypeSummary(Xp("r//b", symbols_), dtd);
  EXPECT_FALSE(desc.dead);
  TypeSet gap = ra;
  gap.Insert(L("b"));
  EXPECT_EQ(desc.touched, gap);
  EXPECT_EQ(desc.subtree, TypeSet::Of(L("b")));  // sealed leaf
}

TEST_F(TypePruneTest, TypePrunedReportHasFixedFields) {
  const ConflictReport report = TypePrunedReport();
  EXPECT_EQ(report.verdict, ConflictVerdict::kNoConflict);
  EXPECT_EQ(report.method, DetectorMethod::kTypePruned);
  EXPECT_EQ(report.detail, "schema-disjoint");
  EXPECT_FALSE(report.witness.has_value());
  EXPECT_EQ(report.trees_checked, 0u);
  EXPECT_EQ(DetectorMethodName(DetectorMethod::kTypePruned), "type-pruned");
}

// ---------------------------------------------------------------------------
// The two soundness asymmetries of the pruning rules.

TEST_F(TypePruneTest, SchemaDeadReadPrunesDeletesButNotInserts) {
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("r"));
  dtd.Allow(L("r"), L("a"));
  dtd.Seal(L("a"));

  // r//b is schema-dead: b is unreachable in the allow-graph.
  const TypeSummary read = ComputeTypeSummary(Xp("r//b", symbols_), dtd);
  ASSERT_TRUE(read.dead);
  const TypeSummary del = ComputeTypeSummary(Xp("r/a", symbols_), dtd);

  // Deletes are monotone (never create matches): a dead read stays dead,
  // so pruning is sound — and the conformant-tree oracle agrees.
  EXPECT_TRUE(TypePrunesReadDelete(read, del, ConflictSemantics::kNode));
  BoundedSearchOptions options;
  options.max_nodes = 4;
  const BruteForceResult oracle = FindReadDeleteConflictUnderDtd(
      Xp("r//b", symbols_), Xp("r/a", symbols_), dtd, ConflictSemantics::kNode,
      options);
  EXPECT_EQ(oracle.outcome, SearchOutcome::kExhaustedNoWitness);

  // An insert, however, can push the document *outside* the schema and
  // give the dead read its first match: INSERT <b/> at r/a conflicts with
  // r//b even though no conformant document matches r//b. read.dead must
  // not prune inserts.
  const Tree content = Xml("<b/>", symbols_);
  EXPECT_FALSE(
      TypePrunesReadInsert(read, del, content, ConflictSemantics::kNode));
  auto store = std::make_shared<PatternStore>(symbols_);
  const PatternRef read_ref = store->Intern(Xp("r//b", symbols_));
  const UpdateOp insert = UpdateOp::MakeInsert(
      store, store->Intern(Xp("r/a", symbols_)),
      std::make_shared<const Tree>(Xml("<b/>", symbols_)));
  DetectorOptions with_dtd;
  with_dtd.dtd = &dtd;
  const Result<ConflictReport> report =
      Detect(*store, read_ref, insert, with_dtd);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, ConflictVerdict::kConflict);
  EXPECT_NE(report->method, DetectorMethod::kTypePruned);
}

TEST_F(TypePruneTest, SchemaDeadUpdatePatternPrunesBothKinds) {
  Dtd dtd(symbols_);
  dtd.SetRootLabel(L("r"));
  dtd.Allow(L("r"), L("a"));
  dtd.Seal(L("a"));

  const TypeSummary read = ComputeTypeSummary(Xp("r//a", symbols_), dtd);
  ASSERT_FALSE(read.dead);
  // r/b never selects anything on a conformant document, so neither the
  // delete nor the insert it anchors can fire.
  const TypeSummary upd = ComputeTypeSummary(Xp("r/b", symbols_), dtd);
  ASSERT_TRUE(upd.dead);
  EXPECT_TRUE(TypePrunesReadDelete(read, upd, ConflictSemantics::kTree));
  const Tree content = Xml("<a/>", symbols_);
  EXPECT_TRUE(
      TypePrunesReadInsert(read, upd, content, ConflictSemantics::kTree));
}

// ---------------------------------------------------------------------------
// A small typed workload (the bench shape at test size): `subsystems`
// sealed label families under a sealed root; cross-subsystem pairs are
// schema-disjoint, same-subsystem pairs are not.

struct SmallTypedWorkload {
  std::shared_ptr<SymbolTable> symbols;
  std::shared_ptr<PatternStore> store;
  std::shared_ptr<const Dtd> dtd;
  std::vector<PatternRef> reads;    // 2 per subsystem
  std::vector<UpdateOp> updates;    // 1 delete + 1 insert per subsystem
};

SmallTypedWorkload MakeSmallTypedWorkload(size_t subsystems) {
  SmallTypedWorkload w;
  w.symbols = NewSymbols();
  w.store = std::make_shared<PatternStore>(w.symbols);

  std::string schema = "root r\nallow r :";
  for (size_t k = 0; k < subsystems; ++k) schema += " s" + std::to_string(k);
  schema += "\n";
  for (size_t k = 0; k < subsystems; ++k) {
    const std::string s = std::to_string(k);
    schema += "allow s" + s + " : x" + s + "\n";
    schema += "allow x" + s + " : x" + s + " y" + s + "\n";
    schema += "seal y" + s + "\n";
  }
  w.dtd = std::make_shared<const Dtd>(Dtd::Parse(schema, w.symbols).value());

  for (size_t k = 0; k < subsystems; ++k) {
    const std::string s = std::to_string(k);
    w.reads.push_back(
        w.store->Intern(Xp("r/s" + s + "/x" + s + "/y" + s, w.symbols)));
    w.reads.push_back(w.store->Intern(Xp("r/s" + s + "//y" + s, w.symbols)));
    w.updates.push_back(
        UpdateOp::MakeDelete(
            w.store, w.store->Intern(Xp("r/s" + s + "//y" + s, w.symbols)))
            .value());
    w.updates.push_back(UpdateOp::MakeInsert(
        w.store, w.store->Intern(Xp("r/s" + s + "/x" + s, w.symbols)),
        std::make_shared<const Tree>(Xml("<y" + s + "/>", w.symbols))));
  }
  return w;
}

TEST_F(TypePruneTest, FacadeStageZeroPrunesCrossSubsystemPairsOnly) {
  const SmallTypedWorkload w = MakeSmallTypedWorkload(2);
  DetectorOptions plain;
  DetectorOptions pruned = plain;
  pruned.dtd = w.dtd.get();
  DetectorOptions ablated = pruned;
  ablated.enable_type_pruning = false;

  // Cross-subsystem: Stage 0 answers, and TypePruneStage (the batch
  // engine's pre-memo probe) agrees.
  const Result<ConflictReport> cross =
      Detect(*w.store, w.reads[0], w.updates[2], pruned);
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(cross->method, DetectorMethod::kTypePruned);
  EXPECT_EQ(cross->verdict, ConflictVerdict::kNoConflict);
  EXPECT_TRUE(TypePruneStage(*w.store, w.reads[0], w.updates[2].kind(),
                             w.updates[2].pattern_ref(), nullptr, pruned)
                  .has_value());

  // Same-subsystem: read r/s0/x0/y0 vs delete r/s0//y0 overlaps on y0 —
  // Stage 0 hands the pair down, and the verdict is the real conflict.
  const Result<ConflictReport> same =
      Detect(*w.store, w.reads[0], w.updates[0], pruned);
  ASSERT_TRUE(same.ok());
  EXPECT_NE(same->method, DetectorMethod::kTypePruned);
  EXPECT_EQ(same->verdict, ConflictVerdict::kConflict);
  EXPECT_FALSE(TypePruneStage(*w.store, w.reads[0], w.updates[0].kind(),
                              w.updates[0].pattern_ref(), nullptr, pruned)
                   .has_value());

  // With pruning ablated (or no schema at all) every pair runs the
  // pre-Stage-0 pipeline; reports must be field-identical.
  for (const PatternRef read : w.reads) {
    for (const UpdateOp& update : w.updates) {
      const Result<ConflictReport> off = Detect(*w.store, read, update, plain);
      const Result<ConflictReport> abl =
          Detect(*w.store, read, update, ablated);
      ASSERT_TRUE(off.ok());
      ASSERT_TRUE(abl.ok());
      EXPECT_EQ(off->verdict, abl->verdict);
      EXPECT_EQ(off->method, abl->method);
      EXPECT_EQ(off->detail, abl->detail);
      EXPECT_EQ(off->trees_checked, abl->trees_checked);
      EXPECT_NE(abl->method, DetectorMethod::kTypePruned);
    }
  }
}

TEST_F(TypePruneTest, FacadeAccountingInvariantHoldsWithStageZero) {
  const SmallTypedWorkload w = MakeSmallTypedWorkload(3);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  auto counter = [&](const char* name) {
    return reg.GetCounter(name).value();
  };
  const uint64_t calls0 = counter("detector.calls");
  const uint64_t conflict0 = counter("detector.verdict.conflict");
  const uint64_t no_conflict0 = counter("detector.verdict.no_conflict");
  const uint64_t unknown0 = counter("detector.verdict.unknown");
  const uint64_t errors0 = counter("detector.errors");
  const uint64_t pruned0 = counter("detector.method.type_pruned");

  DetectorOptions options;
  options.dtd = w.dtd.get();
  uint64_t pruned_seen = 0;
  for (const PatternRef read : w.reads) {
    for (const UpdateOp& update : w.updates) {
      const Result<ConflictReport> r = Detect(*w.store, read, update, options);
      ASSERT_TRUE(r.ok());
      if (r->method == DetectorMethod::kTypePruned) ++pruned_seen;
    }
  }
  // One error-path call: an invalid ref counts under detector.errors and
  // must still balance the call counter.
  EXPECT_FALSE(Detect(*w.store, PatternRef(), w.updates[0], options).ok());

  const uint64_t calls = counter("detector.calls") - calls0;
  const uint64_t conflict = counter("detector.verdict.conflict") - conflict0;
  const uint64_t no_conflict =
      counter("detector.verdict.no_conflict") - no_conflict0;
  const uint64_t unknown = counter("detector.verdict.unknown") - unknown0;
  const uint64_t errors = counter("detector.errors") - errors0;
  const uint64_t pruned = counter("detector.method.type_pruned") - pruned0;

  EXPECT_EQ(calls, w.reads.size() * w.updates.size() + 1);
  EXPECT_EQ(calls, conflict + no_conflict + unknown + errors);
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(pruned, pruned_seen);
  EXPECT_GT(pruned, 0u);
  // Every pruned pair is a kNoConflict verdict, so the pruned count is
  // bounded by the no-conflict leg.
  EXPECT_LE(pruned, no_conflict);
}

TEST_F(TypePruneTest, BatchPrunesBeforeTheMemoCache) {
  const SmallTypedWorkload w = MakeSmallTypedWorkload(3);
  BatchDetectorOptions options;
  options.detector.dtd = w.dtd.get();
  options.detector.build_witness = false;
  options.store = w.store;
  BatchConflictDetector batch(options);

  // Cross-subsystem pairs only: everything prunes, nothing reaches the
  // memo cache or a detector job.
  std::vector<ReadUpdatePair> cross;
  for (size_t i = 0; i < w.reads.size(); ++i) {
    for (size_t j = 0; j < w.updates.size(); ++j) {
      if (i / 2 != j / 2) cross.push_back({i, j});
    }
  }
  const auto pruned_results = batch.DetectPairs(w.reads, w.updates, cross);
  ASSERT_EQ(pruned_results.size(), cross.size());
  for (const SharedConflictResult& r : pruned_results) {
    ASSERT_TRUE(r->ok());
    EXPECT_EQ((*r)->method, DetectorMethod::kTypePruned);
    EXPECT_EQ((*r)->verdict, ConflictVerdict::kNoConflict);
  }
  BatchStats stats = batch.stats();
  EXPECT_EQ(stats.pairs_total, cross.size());
  EXPECT_EQ(stats.type_pruned, cross.size());
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.unique_pairs_solved, 0u);

  // Re-running the same pruned pairs prunes again (no cache entries were
  // created to hit).
  batch.DetectPairs(w.reads, w.updates, cross);
  stats = batch.stats();
  EXPECT_EQ(stats.type_pruned, 2 * cross.size());
  EXPECT_EQ(stats.cache_hits, 0u);

  // The full matrix mixes pruned and solved pairs; the engine-checked
  // invariant hits + misses + type_pruned == pairs_total must hold.
  batch.ResetStats();
  const auto matrix = batch.DetectMatrix(w.reads, w.updates);
  ASSERT_EQ(matrix.size(), w.reads.size() * w.updates.size());
  stats = batch.stats();
  EXPECT_EQ(stats.pairs_total, matrix.size());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.type_pruned,
            stats.pairs_total);
  EXPECT_GT(stats.type_pruned, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_EQ(stats.unique_pairs_solved, stats.cache_misses);
}

TEST_F(TypePruneTest, EngineInheritsTheSchemaEverywhere) {
  SmallTypedWorkload w = MakeSmallTypedWorkload(2);
  EngineOptions options;
  options.dtd = w.dtd;
  options.batch.detector.build_witness = false;
  Engine engine(w.symbols, std::move(options));

  const PatternRef read = engine.InternXPath("r/s0/x0/y0").value();
  const UpdateOp del =
      UpdateOp::MakeDelete(engine.store(),
                           engine.InternXPath("r/s1//y1").value())
          .value();
  const Result<ConflictReport> report = engine.Detect(read, del);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->method, DetectorMethod::kTypePruned);
  EXPECT_EQ(report->verdict, ConflictVerdict::kNoConflict);

  // The matrix engine under the facade prunes with the same schema.
  std::vector<PatternRef> reads;
  for (const PatternRef r : w.reads) {
    reads.push_back(engine.Intern(w.store->pattern(r)));
  }
  std::vector<UpdateOp> updates;
  for (const UpdateOp& u : w.updates) updates.push_back(engine.Bind(u));
  engine.DetectMatrix(reads, updates);
  EXPECT_GT(engine.batch_stats().type_pruned, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: the pruned pipeline must give the same verdict/method
// matrix at any thread count, and concurrent facade calls on one shared
// store (racing summary builds and store appends) must agree with a
// single-threaded reference. These are the TSan targets.

TEST_F(TypePruneTest, BatchVerdictsAreIdenticalAcrossThreadCounts) {
  const SmallTypedWorkload w = MakeSmallTypedWorkload(4);
  auto run = [&](size_t num_threads) {
    BatchDetectorOptions options;
    options.detector.dtd = w.dtd.get();
    options.detector.build_witness = false;
    options.num_threads = num_threads;
    options.store = w.store;
    BatchConflictDetector batch(options);
    return batch.DetectMatrix(w.reads, w.updates);
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i]->ok());
    ASSERT_TRUE(parallel[i]->ok());
    EXPECT_EQ((*serial[i])->verdict, (*parallel[i])->verdict) << i;
    EXPECT_EQ((*serial[i])->method, (*parallel[i])->method) << i;
    EXPECT_EQ((*serial[i])->detail, (*parallel[i])->detail) << i;
  }
}

TEST_F(TypePruneTest, ConcurrentFacadeDetectsOnOneSharedStore) {
  // A fresh workload per run: the eight threads race the lazy summary
  // builds (TypesSlot call_once), the lock-free entry-table reads, and —
  // via their own Intern calls — the writer side of the table.
  const SmallTypedWorkload w = MakeSmallTypedWorkload(4);
  DetectorOptions options;
  options.dtd = w.dtd.get();
  options.build_witness = false;

  std::vector<ConflictVerdict> reference;
  std::vector<DetectorMethod> reference_methods;
  for (const PatternRef read : w.reads) {
    for (const UpdateOp& update : w.updates) {
      const Result<ConflictReport> r = Detect(*w.store, read, update, options);
      ASSERT_TRUE(r.ok());
      reference.push_back(r->verdict);
      reference_methods.push_back(r->method);
    }
  }

  constexpr size_t kThreads = 8;
  std::vector<std::vector<ConflictVerdict>> verdicts(kThreads);
  std::vector<std::vector<DetectorMethod>> methods(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Interleave appends with the detection reads.
      w.store->Intern(Xp("r/s" + std::to_string(t % 4) + "/x" +
                             std::to_string(t % 4),
                         w.symbols));
      for (const PatternRef read : w.reads) {
        for (const UpdateOp& update : w.updates) {
          const Result<ConflictReport> r =
              Detect(*w.store, read, update, options);
          if (!r.ok()) continue;  // sizes diverge -> test fails below
          verdicts[t].push_back(r->verdict);
          methods[t].push_back(r->method);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(verdicts[t], reference) << "thread " << t;
    EXPECT_EQ(methods[t], reference_methods) << "thread " << t;
  }
}

// ---------------------------------------------------------------------------
// Exhaustive small-pattern sweep against the conformant-tree oracles.
//
// Schema: root r, r -> {a}, a -> {a, b}, b sealed leaf. Reads are every
// linear chain of <= 3 nodes rooted at r or a (the latter all schema-dead)
// over labels {r, a, b}; updates are every delete chain of 2..3 nodes
// rooted at r plus inserts at every chain of <= 2 nodes with contents
// drawn from in-schema and out-of-schema trees.
//
// Checked per (pair, semantics):
//   - dtd set + pruning ablated  == no dtd at all (field-for-field);
//   - Stage 0 did not fire       -> report == the unrestricted report;
//   - Stage 0 fired              -> kNoConflict, and when the unrestricted
//     verdict disagrees (a conflict whose witnesses the schema excludes),
//     the exhaustive conformant-tree search must come up empty. The
//     oracle's bound (4 nodes) covers every witness the unrestricted
//     detector found for these pattern sizes, so an unsound prune cannot
//     hide behind the bound.

void AppendChains(const std::shared_ptr<SymbolTable>& symbols,
                  const std::vector<Label>& roots,
                  const std::vector<Label>& labels, size_t min_nodes,
                  size_t max_nodes, std::vector<Pattern>* out) {
  for (const Label root : roots) {
    for (size_t n = min_nodes; n <= max_nodes; ++n) {
      const size_t edges = n - 1;
      for (size_t axes = 0; axes < (size_t{1} << edges); ++axes) {
        std::vector<size_t> labeling(edges, 0);
        while (true) {
          Pattern p(symbols);
          PatternNodeId node = p.CreateRoot(root);
          for (size_t i = 0; i < edges; ++i) {
            const Axis axis =
                (axes >> i) & 1 ? Axis::kDescendant : Axis::kChild;
            node = p.AddChild(node, labels[labeling[i]], axis);
          }
          p.SetOutput(node);
          out->push_back(std::move(p));
          size_t i = 0;
          while (i < edges && ++labeling[i] == labels.size()) {
            labeling[i++] = 0;
          }
          if (i == edges) break;
        }
      }
    }
  }
}

class TypePruneSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dtd_ = std::make_unique<Dtd>(symbols_);
    dtd_->SetRootLabel(L("r"));
    dtd_->Allow(L("r"), L("a"));
    dtd_->Allow(L("a"), L("a"));
    dtd_->Allow(L("a"), L("b"));
    dtd_->Seal(L("b"));
    ASSERT_TRUE(dtd_->Validate().ok());
    store_ = std::make_shared<PatternStore>(symbols_);

    std::vector<Pattern> read_patterns;
    AppendChains(symbols_, {L("r"), L("a")}, {L("r"), L("a"), L("b")}, 1, 3,
                 &read_patterns);
    for (const Pattern& p : read_patterns) {
      reads_.push_back(store_->Intern(p));
    }
  }

  /// Reports must agree on every deterministic field (witness trees mint
  /// fresh labels; presence is compared, content is not).
  static void ExpectSameReport(const Result<ConflictReport>& a,
                               const Result<ConflictReport>& b,
                               const std::string& label) {
    ASSERT_EQ(a.ok(), b.ok()) << label;
    if (!a.ok()) return;
    EXPECT_EQ(a->verdict, b->verdict) << label;
    EXPECT_EQ(a->method, b->method) << label;
    EXPECT_EQ(a->detail, b->detail) << label;
    EXPECT_EQ(a->trees_checked, b->trees_checked) << label;
    EXPECT_EQ(a->witness.has_value(), b->witness.has_value()) << label;
  }

  /// The three-way comparison at the heart of the sweep; `oracle` runs the
  /// schema-restricted exhaustive search for pairs where only the oracle
  /// can adjudicate the prune.
  template <typename Oracle>
  void CheckPair(const PatternRef read, const UpdateOp& update,
                 ConflictSemantics semantics, const std::string& label,
                 Oracle&& oracle) {
    DetectorOptions plain;
    plain.semantics = semantics;
    plain.build_witness = false;
    DetectorOptions pruned = plain;
    pruned.dtd = dtd_.get();
    DetectorOptions ablated = pruned;
    ablated.enable_type_pruning = false;

    const Result<ConflictReport> off = Detect(*store_, read, update, plain);
    const Result<ConflictReport> abl = Detect(*store_, read, update, ablated);
    const Result<ConflictReport> on = Detect(*store_, read, update, pruned);
    ASSERT_TRUE(off.ok()) << label;
    ASSERT_TRUE(abl.ok()) << label;
    ASSERT_TRUE(on.ok()) << label;

    // Ablation == schema-free pipeline, always.
    ExpectSameReport(off, abl, label + " [ablated]");

    if (on->method != DetectorMethod::kTypePruned) {
      // Stage 0 handed the pair down: Stages 1-2 are schema-oblivious.
      ExpectSameReport(off, on, label + " [not pruned]");
      return;
    }
    EXPECT_EQ(on->verdict, ConflictVerdict::kNoConflict) << label;
    if (off->verdict == ConflictVerdict::kNoConflict) return;
    // The unrestricted detector sees a conflict (or cannot decide) but
    // Stage 0 pruned: every witness must be non-conformant. Exhaust the
    // conformant space up to the bound.
    const BruteForceResult restricted = oracle();
    EXPECT_EQ(restricted.outcome, SearchOutcome::kExhaustedNoWitness)
        << label << " — type-pruned pair has a conformant witness";
    EXPECT_FALSE(restricted.truncated) << label;
  }

  Label L(const char* name) { return symbols_->Intern(name); }

  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
  std::unique_ptr<Dtd> dtd_;
  std::shared_ptr<PatternStore> store_;
  std::vector<PatternRef> reads_;
};

TEST_F(TypePruneSweepTest, DeleteSweepMatchesOracles) {
  std::vector<Pattern> delete_patterns;
  AppendChains(symbols_, {L("r")}, {L("r"), L("a"), L("b")}, 2, 3,
               &delete_patterns);
  std::vector<UpdateOp> deletes;
  for (const Pattern& p : delete_patterns) {
    deletes.push_back(UpdateOp::MakeDelete(store_, store_->Intern(p)).value());
  }
  BoundedSearchOptions oracle_options;
  oracle_options.max_nodes = 4;

  for (const ConflictSemantics semantics :
       {ConflictSemantics::kNode, ConflictSemantics::kTree}) {
    for (size_t i = 0; i < reads_.size(); ++i) {
      for (size_t j = 0; j < deletes.size(); ++j) {
        const std::string label =
            "delete pair (" + std::to_string(i) + "," + std::to_string(j) +
            ") sem=" + std::string(ConflictSemanticsName(semantics));
        CheckPair(reads_[i], deletes[j], semantics, label, [&] {
          return FindReadDeleteConflictUnderDtd(
              store_->pattern(reads_[i]),
              store_->pattern(deletes[j].pattern_ref()), *dtd_, semantics,
              oracle_options);
        });
      }
    }
  }
}

TEST_F(TypePruneSweepTest, InsertSweepMatchesOracles) {
  std::vector<Pattern> insert_patterns;
  AppendChains(symbols_, {L("r")}, {L("r"), L("a"), L("b")}, 1, 2,
               &insert_patterns);
  std::vector<UpdateOp> inserts;
  for (const Pattern& p : insert_patterns) {
    // Contents: in-schema leaf, out-of-schema leaf, in-schema subtree.
    for (const char* xml : {"<b/>", "<c/>", "<a><b/></a>"}) {
      inserts.push_back(UpdateOp::MakeInsert(
          store_, store_->Intern(p),
          std::make_shared<const Tree>(Xml(xml, symbols_))));
    }
  }
  BoundedSearchOptions oracle_options;
  oracle_options.max_nodes = 4;

  for (const ConflictSemantics semantics :
       {ConflictSemantics::kNode, ConflictSemantics::kTree}) {
    for (size_t i = 0; i < reads_.size(); ++i) {
      for (size_t j = 0; j < inserts.size(); ++j) {
        const std::string label =
            "insert pair (" + std::to_string(i) + "," + std::to_string(j) +
            ") sem=" + std::string(ConflictSemanticsName(semantics));
        CheckPair(reads_[i], inserts[j], semantics, label, [&] {
          return FindReadInsertConflictUnderDtd(
              store_->pattern(reads_[i]),
              store_->pattern(inserts[j].pattern_ref()), inserts[j].content(),
              *dtd_, semantics, oracle_options);
        });
      }
    }
  }
}

}  // namespace
}  // namespace xmlup
