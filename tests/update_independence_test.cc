#include "conflict/update_independence.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class UpdateIndependenceTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  UpdateOp Ins(const char* pattern, const char* x) {
    return UpdateOp::MakeInsert(
        Xp(pattern, symbols_),
        std::make_shared<const Tree>(Xml(x, symbols_)));
  }
  UpdateOp Del(const char* pattern) {
    Result<UpdateOp> op = UpdateOp::MakeDelete(Xp(pattern, symbols_));
    EXPECT_TRUE(op.ok());
    return std::move(op).value();
  }

  CommutativityCertificate Certify(const UpdateOp& a, const UpdateOp& b) {
    Result<IndependenceReport> r = CertifyUpdatesCommute(a, b);
    EXPECT_TRUE(r.ok()) << r.status();
    return r->certificate;
  }
};

TEST_F(UpdateIndependenceTest, DisjointInsertsCertified) {
  EXPECT_EQ(Certify(Ins("a/x", "<m/>"), Ins("a/y", "<n/>")),
            CommutativityCertificate::kCertified);
}

TEST_F(UpdateIndependenceTest, IdenticalInsertsCertified) {
  // §6: identical insertions ought not to conflict; the certificate covers
  // them because inserting <c/> under b never changes [[a/b]].
  EXPECT_EQ(Certify(Ins("a/b", "<c/>"), Ins("a/b", "<c/>")),
            CommutativityCertificate::kCertified);
}

TEST_F(UpdateIndependenceTest, EnablingInsertNotCertified) {
  const UpdateOp i1 = Ins("a", "<b/>");
  const UpdateOp i2 = Ins("a/b", "<c/>");
  EXPECT_EQ(Certify(i1, i2), CommutativityCertificate::kUnknown);
  // And indeed they do not commute: the brute force finds a violation.
  BoundedSearchOptions options;
  options.max_nodes = 3;
  EXPECT_EQ(FindCommutativityViolation(i1, i2, options).outcome,
            SearchOutcome::kWitnessFound);
}

TEST_F(UpdateIndependenceTest, InsertDeleteDisjointCertified) {
  EXPECT_EQ(Certify(Ins("a/x", "<m/>"), Del("a/y")),
            CommutativityCertificate::kCertified);
}

TEST_F(UpdateIndependenceTest, DeleteOfInsertTargetNotCertified) {
  EXPECT_EQ(Certify(Ins("a/b", "<c/>"), Del("a/b")),
            CommutativityCertificate::kUnknown);
}

TEST_F(UpdateIndependenceTest, NestedDeletesNotCertified) {
  // Deleting b subtrees removes the other delete's b/c points.
  EXPECT_EQ(Certify(Del("a/b"), Del("a/b/c")),
            CommutativityCertificate::kUnknown);
}

TEST_F(UpdateIndependenceTest, SiblingDeletesCertified) {
  EXPECT_EQ(Certify(Del("a/x"), Del("a/y")),
            CommutativityCertificate::kCertified);
}

TEST_F(UpdateIndependenceTest, DetailIsPopulated) {
  Result<IndependenceReport> r =
      CertifyUpdatesCommute(Ins("a", "<b/>"), Ins("a/b", "<c/>"));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->detail.empty());
}

/// Soundness sweep: every certified pair must survive an exhaustive
/// commutativity-violation search over small trees.
class CertificatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CertificatePropertyTest, CertifiedPairsNeverViolate) {
  auto symbols = NewSymbols();
  Rng rng(40000 + GetParam());
  PatternGenOptions options;
  options.size = 3;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);

  auto random_update = [&](Rng* r) -> UpdateOp {
    if (r->NextBool(0.5)) {
      Tree content(symbols);
      content.CreateRoot(options.alphabet[r->NextBounded(2)]);
      return UpdateOp::MakeInsert(
          gen.GenerateLinear(r),
          std::make_shared<const Tree>(std::move(content)));
    }
    for (;;) {
      Pattern p = gen.GenerateLinear(r);
      Result<UpdateOp> del = UpdateOp::MakeDelete(std::move(p));
      if (del.ok()) return std::move(del).value();
    }
  };

  int certified = 0;
  for (int iter = 0; iter < 12; ++iter) {
    const UpdateOp o1 = random_update(&rng);
    const UpdateOp o2 = random_update(&rng);
    Result<IndependenceReport> cert = CertifyUpdatesCommute(o1, o2);
    ASSERT_TRUE(cert.ok());
    if (cert->certificate != CommutativityCertificate::kCertified) continue;
    ++certified;
    BoundedSearchOptions search;
    search.max_nodes = 4;
    const BruteForceResult violation =
        FindCommutativityViolation(o1, o2, search);
    EXPECT_NE(violation.outcome, SearchOutcome::kWitnessFound)
        << "certified pair violates commutativity; seed=" << GetParam()
        << " iter=" << iter;
  }
  // The sweep should certify at least something, or it tests nothing.
  EXPECT_GT(certified, 0) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, CertificatePropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace xmlup
