#include "conflict/witness_build.h"

#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "pattern/pattern_ops.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

class WitnessBuildTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(WitnessBuildTest, MatchWordToPathResolvesClasses) {
  const ClassWord word = {LabelClass::Of(symbols_->Intern("a")),
                          LabelClass::Any(),
                          LabelClass::Of(symbols_->Intern("b"))};
  NodeId deepest = kNullNode;
  Tree path = MatchWordToPath(word, symbols_, &deepest);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.LabelName(path.root()), "a");
  EXPECT_EQ(path.LabelName(deepest), "b");
  // The Any position resolved to a fresh symbol, not to a or b.
  const NodeId middle = path.first_child(path.root());
  EXPECT_NE(path.LabelName(middle), "a");
  EXPECT_NE(path.LabelName(middle), "b");
  EXPECT_EQ(path.first_child(deepest), kNullNode);
}

TEST_F(WitnessBuildTest, FreshFillersDifferAcrossCalls) {
  const ClassWord word = {LabelClass::Any()};
  Tree p1 = MatchWordToPath(word, symbols_, nullptr);
  Tree p2 = MatchWordToPath(word, symbols_, nullptr);
  EXPECT_NE(p1.LabelName(p1.root()), p2.LabelName(p2.root()));
}

TEST_F(WitnessBuildTest, BranchModelsMakeFullPatternEmbed) {
  // The mainline of a[x][.//y]/b embeds into the path a/b; after grafting
  // branch models everywhere, the full pattern must embed too (the
  // Lemma 4/8 extension step).
  const Pattern full = Xp("a[x][.//y]/b", symbols_);
  Tree path(symbols_);
  const NodeId root = path.CreateRoot(symbols_->Intern("a"));
  path.AddChild(root, symbols_->Intern("b"));
  EXPECT_FALSE(HasEmbedding(full, path));  // predicates unsatisfied
  GraftBranchModelsEverywhere(&path, full);
  EXPECT_TRUE(HasEmbedding(full, path));
  EXPECT_TRUE(path.Validate().ok());
}

TEST_F(WitnessBuildTest, LinearPatternGraftsNothing) {
  const Pattern linear = Xp("a/b//c", symbols_);
  Tree path(symbols_);
  path.CreateRoot(symbols_->Intern("a"));
  const size_t before = path.size();
  GraftBranchModelsEverywhere(&path, linear);
  EXPECT_EQ(path.size(), before);
}

TEST_F(WitnessBuildTest, DeepBranchSubtreesCopiedWhole) {
  // Branches may themselves branch; the grafted model carries the whole
  // subpattern.
  const Pattern full = Xp("a[x[y][z]]/b", symbols_);
  Tree path(symbols_);
  const NodeId root = path.CreateRoot(symbols_->Intern("a"));
  path.AddChild(root, symbols_->Intern("b"));
  GraftBranchModelsEverywhere(&path, full);
  EXPECT_TRUE(HasEmbedding(full, path));
  // Each original node gained one branch model of 3 nodes (x, y, z).
  EXPECT_EQ(path.size(), 2u + 2u * 3u);
}

}  // namespace
}  // namespace xmlup
