#include "conflict/witness_check.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class WitnessCheckTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(WitnessCheckTest, SemanticsNames) {
  EXPECT_EQ(ConflictSemanticsName(ConflictSemantics::kNode), "node");
  EXPECT_EQ(ConflictSemanticsName(ConflictSemantics::kTree), "tree");
  EXPECT_EQ(ConflictSemanticsName(ConflictSemantics::kValue), "value");
}

TEST_F(WitnessCheckTest, InsertCreatingNewResultIsNodeConflict) {
  // §1: insert <C/> under B; read //C gains a node.
  Tree t = Xml("<r><B/></r>", symbols_);
  EXPECT_TRUE(IsReadInsertWitness(Xp("r//C", symbols_), Xp("r/B", symbols_),
                                  Xml("<C/>", symbols_), t,
                                  ConflictSemantics::kNode));
}

TEST_F(WitnessCheckTest, InsertWithoutMatchIsNotWitness) {
  Tree t = Xml("<r><D/></r>", symbols_);  // no B: insertion is a no-op
  EXPECT_FALSE(IsReadInsertWitness(Xp("r//C", symbols_), Xp("r/B", symbols_),
                                   Xml("<C/>", symbols_), t,
                                   ConflictSemantics::kNode));
}

TEST_F(WitnessCheckTest, UnrelatedReadUnaffected) {
  Tree t = Xml("<r><B/><D/></r>", symbols_);
  EXPECT_FALSE(IsReadInsertWitness(Xp("r//D", symbols_), Xp("r/B", symbols_),
                                   Xml("<C/>", symbols_), t,
                                   ConflictSemantics::kNode));
}

TEST_F(WitnessCheckTest, PaperNodeVsTreeConflictExample) {
  // §3 discussion after Definition 3: R returns the root; I inserts X
  // under a B child. Node semantics: no conflict (the root is still
  // returned). Tree semantics: conflict (the returned subtree changed).
  Tree t = Xml("<r><B/></r>", symbols_);
  const Pattern read = Xp("r", symbols_);
  const Pattern ins = Xp("r/B", symbols_);
  Tree x = Xml("<X/>", symbols_);
  EXPECT_FALSE(
      IsReadInsertWitness(read, ins, x, t, ConflictSemantics::kNode));
  EXPECT_TRUE(IsReadInsertWitness(read, ins, x, t, ConflictSemantics::kTree));
  EXPECT_TRUE(
      IsReadInsertWitness(read, ins, x, t, ConflictSemantics::kValue));
}

TEST_F(WitnessCheckTest, DeleteRemovingResultIsNodeConflict) {
  Tree t = Xml("<r><d><g/></d></r>", symbols_);
  EXPECT_TRUE(IsReadDeleteWitness(Xp("r//g", symbols_), Xp("r/d", symbols_),
                                  t, ConflictSemantics::kNode));
}

TEST_F(WitnessCheckTest, Figure3NodeConflictButNoValueConflict) {
  // Figure 3: the root has a δ child containing γ, and another γ elsewhere
  // with an isomorphic subtree. Deleting δ children removes one γ from the
  // result (node conflict) but the set of result *values* is unchanged.
  Tree t = Xml("<r><d><g/></d><e><g/></e></r>", symbols_);
  const Pattern read = Xp("r//g", symbols_);
  const Pattern del = Xp("r/d", symbols_);
  EXPECT_TRUE(IsReadDeleteWitness(read, del, t, ConflictSemantics::kNode));
  EXPECT_TRUE(IsReadDeleteWitness(read, del, t, ConflictSemantics::kTree));
  EXPECT_FALSE(IsReadDeleteWitness(read, del, t, ConflictSemantics::kValue));
}

TEST_F(WitnessCheckTest, ValueConflictWhenSubtreesDiffer) {
  // As Figure 3 but the two γ subtrees are not isomorphic: value conflict.
  Tree t = Xml("<r><d><g><u/></g></d><e><g/></e></r>", symbols_);
  EXPECT_TRUE(IsReadDeleteWitness(Xp("r//g", symbols_), Xp("r/d", symbols_),
                                  t, ConflictSemantics::kValue));
}

TEST_F(WitnessCheckTest, TreeConflictOnModifiedResultSubtree) {
  // Deletion strictly below a read result: node sets equal, subtree
  // modified.
  Tree t = Xml("<r><a><b/></a></r>", symbols_);
  const Pattern read = Xp("r/a", symbols_);
  const Pattern del = Xp("r/a/b", symbols_);
  EXPECT_FALSE(IsReadDeleteWitness(read, del, t, ConflictSemantics::kNode));
  EXPECT_TRUE(IsReadDeleteWitness(read, del, t, ConflictSemantics::kTree));
  EXPECT_TRUE(IsReadDeleteWitness(read, del, t, ConflictSemantics::kValue));
}

TEST_F(WitnessCheckTest, CheckersDoNotMutateInput) {
  Tree t = Xml("<r><B/></r>", symbols_);
  const uint64_t version = t.version();
  IsReadInsertWitness(Xp("r//C", symbols_), Xp("r/B", symbols_),
                      Xml("<C/>", symbols_), t, ConflictSemantics::kNode);
  IsReadDeleteWitness(Xp("r//B", symbols_), Xp("r/B", symbols_), t,
                      ConflictSemantics::kValue);
  EXPECT_EQ(t.version(), version);
  EXPECT_EQ(t.size(), 2u);
}

TEST_F(WitnessCheckTest, InsertValueConflictDetectedOnIsomorphicResults) {
  // Read selects two isomorphic b subtrees; insertion modifies one of
  // them. Under value semantics the result sets differ ({b, b+x} vs {b}).
  Tree t = Xml("<r><b/><b><m/></b></r>", symbols_);
  const Pattern read = Xp("r/b", symbols_);
  const Pattern ins = Xp("r/b/m", symbols_);
  Tree x = Xml("<x/>", symbols_);
  EXPECT_FALSE(IsReadInsertWitness(read, ins, x, t, ConflictSemantics::kNode));
  EXPECT_TRUE(IsReadInsertWitness(read, ins, x, t, ConflictSemantics::kTree));
  EXPECT_TRUE(IsReadInsertWitness(read, ins, x, t, ConflictSemantics::kValue));
}

TEST_F(WitnessCheckTest, ValueSemanticsMissesCollapsedDuplicates) {
  // Insertion makes one of two isomorphic results distinct from the other,
  // but the modified value is isomorphic to a third result: sets of values
  // unchanged — a case value semantics deliberately ignores.
  Tree t = Xml("<r><b/><b><x/></b></r>", symbols_);
  const Pattern read = Xp("r/b", symbols_);
  const Pattern ins = Xp("r/b", symbols_);  // inserts <x/> under every b
  Tree x = Xml("<x/>", symbols_);
  // After insertion: values {b[x], b[x][x]} vs before {b, b[x]} — differ.
  EXPECT_TRUE(IsReadInsertWitness(read, ins, x, t, ConflictSemantics::kValue));
}

}  // namespace
}  // namespace xmlup
