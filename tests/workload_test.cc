#include "workload/catalog_generator.h"

#include <set>

#include "common/random.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "workload/program_generator.h"
#include "workload/tree_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

TEST(TreeGeneratorTest, RespectsTargetsAndDeterminism) {
  auto symbols = NewSymbols();
  TreeGenOptions options;
  options.target_size = 40;
  options.max_depth = 6;
  options.alphabet = RandomTreeGenerator::MakeAlphabet(symbols.get(), 3);
  RandomTreeGenerator gen(symbols, options);

  Rng rng1(42);
  Rng rng2(42);
  const Tree t1 = gen.Generate(&rng1);
  const Tree t2 = gen.Generate(&rng2);
  EXPECT_TRUE(t1.Validate().ok());
  EXPECT_EQ(t1.size(), t2.size());
  EXPECT_GE(t1.size(), 1u);
  // Depth limit holds.
  for (NodeId n : t1.PreOrder()) EXPECT_LE(t1.Depth(n), 6u);
}

TEST(TreeGeneratorTest, ReachesLargeSizes) {
  auto symbols = NewSymbols();
  TreeGenOptions options;
  options.target_size = 5000;
  options.max_depth = 30;
  options.max_children = 8;
  options.alphabet = RandomTreeGenerator::MakeAlphabet(symbols.get(), 5);
  RandomTreeGenerator gen(symbols, options);
  Rng rng(7);
  const Tree t = gen.Generate(&rng);
  EXPECT_GE(t.size(), 4000u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(PatternGeneratorTest, LinearPatternsAreLinear) {
  auto symbols = NewSymbols();
  PatternGenOptions options;
  options.size = 6;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Pattern p = gen.GenerateLinear(&rng);
    EXPECT_TRUE(p.IsLinear());
    EXPECT_EQ(p.size(), 6u);
    EXPECT_TRUE(p.Validate().ok());
  }
}

TEST(PatternGeneratorTest, BranchingPatternsValid) {
  auto symbols = NewSymbols();
  PatternGenOptions options;
  options.size = 7;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);
  Rng rng(2);
  bool saw_branching = false;
  for (int i = 0; i < 50; ++i) {
    const Pattern p = gen.GenerateBranching(&rng);
    EXPECT_TRUE(p.Validate().ok());
    EXPECT_GE(p.size(), 7u);
    saw_branching |= !p.IsLinear();
  }
  EXPECT_TRUE(saw_branching);
}

TEST(PatternGeneratorTest, NonRootOutputVariant) {
  auto symbols = NewSymbols();
  PatternGenOptions options;
  options.size = 4;
  options.alphabet = {symbols->Intern("a")};
  RandomPatternGenerator gen(symbols, options);
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const Pattern p = gen.GenerateBranchingNonRootOutput(&rng);
    EXPECT_NE(p.output(), p.root());
  }
}

TEST(CatalogGeneratorTest, ShapeMatchesFigure1) {
  auto symbols = NewSymbols();
  CatalogOptions options;
  options.num_books = 20;
  options.low_fraction = 0.5;
  Rng rng(11);
  const Tree catalog = GenerateCatalog(symbols, options, &rng);
  EXPECT_TRUE(catalog.Validate().ok());
  EXPECT_EQ(catalog.LabelName(catalog.root()), "catalog");
  EXPECT_EQ(Evaluate(Xp("catalog/book", symbols), catalog).size(), 20u);
  // Every book has a quantity with a low or high marker.
  EXPECT_EQ(Evaluate(Xp("catalog/book[.//quantity]", symbols), catalog).size(),
            20u);
  const size_t low =
      Evaluate(Xp("catalog/book[.//low]", symbols), catalog).size();
  const size_t high =
      Evaluate(Xp("catalog/book[.//high]", symbols), catalog).size();
  EXPECT_EQ(low + high, 20u);
  EXPECT_GT(low, 0u);
  EXPECT_GT(high, 0u);
}

TEST(ProgramGeneratorTest, GeneratesValidPrograms) {
  auto symbols = NewSymbols();
  ProgramGenOptions options;
  options.num_statements = 20;
  options.num_variables = 3;
  options.pattern.size = 3;
  options.pattern.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomProgramGenerator gen(symbols, options);
  Rng rng(5);
  const Program program = gen.Generate(&rng);
  EXPECT_EQ(program.size(), 20u);
  const std::vector<std::string> names = gen.VariableNames();
  std::set<std::string> vars(names.begin(), names.end());
  bool saw_read = false;
  bool saw_update = false;
  for (const Statement& s : program.statements()) {
    EXPECT_TRUE(vars.count(s.target_var) > 0);
    if (s.kind == Statement::Kind::kRead) {
      saw_read = true;
    } else {
      saw_update = true;
    }
    if (s.kind == Statement::Kind::kDelete) {
      EXPECT_NE(s.pattern.output(), s.pattern.root());
    }
    if (s.kind == Statement::Kind::kInsert) {
      ASSERT_NE(s.content, nullptr);
      EXPECT_TRUE(s.content->has_root());
    }
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_update);
}

}  // namespace
}  // namespace xmlup
