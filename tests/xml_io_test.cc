#include <string>

#include "common/random.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/tree_algos.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;

class XmlIoTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(XmlIoTest, ParsesSelfClosingElement) {
  Result<Tree> t = ParseXml("<a/>", symbols_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 1u);
  EXPECT_EQ(t->LabelName(t->root()), "a");
}

TEST_F(XmlIoTest, ParsesNestedElements) {
  Result<Tree> t = ParseXml("<a><b><c/></b><d/></a>", symbols_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 4u);
  const std::vector<NodeId> kids = t->Children(t->root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(t->LabelName(kids[0]), "b");
  EXPECT_EQ(t->LabelName(kids[1]), "d");
}

TEST_F(XmlIoTest, DiscardsAttributesAndText) {
  Result<Tree> t = ParseXml(
      "<book id=\"1\" lang='en'>  some text <title>XML</title></book>",
      symbols_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 2u);
}

TEST_F(XmlIoTest, StrictModeRejectsAttributes) {
  XmlParseOptions options;
  options.ignore_attributes = false;
  Result<Tree> t = ParseXml("<a x=\"1\"/>", symbols_, options);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
}

TEST_F(XmlIoTest, StrictModeRejectsText) {
  XmlParseOptions options;
  options.ignore_text = false;
  EXPECT_FALSE(ParseXml("<a>hello</a>", symbols_, options).ok());
  // Whitespace-only content is fine even in strict mode.
  EXPECT_TRUE(ParseXml("<a>  \n  <b/> </a>", symbols_, options).ok());
}

TEST_F(XmlIoTest, SkipsPrologCommentsAndCdata) {
  const char* doc =
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE catalog>\n"
      "<!-- a comment -->\n"
      "<a><!-- inner --><![CDATA[ <junk/> ]]><b/></a>\n"
      "<!-- trailing -->";
  Result<Tree> t = ParseXml(doc, symbols_);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->size(), 2u);
}

TEST_F(XmlIoTest, RejectsMismatchedTags) {
  Result<Tree> t = ParseXml("<a><b></a></b>", symbols_);
  EXPECT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("mismatched"), std::string::npos);
}

TEST_F(XmlIoTest, RejectsTruncatedInput) {
  EXPECT_FALSE(ParseXml("<a><b/>", symbols_).ok());
  EXPECT_FALSE(ParseXml("<a", symbols_).ok());
  EXPECT_FALSE(ParseXml("", symbols_).ok());
}

TEST_F(XmlIoTest, RejectsTrailingContent) {
  EXPECT_FALSE(ParseXml("<a/><b/>", symbols_).ok());
}

TEST_F(XmlIoTest, ErrorsCarryLineInformation) {
  Result<Tree> t = ParseXml("<a>\n<b>\n</c>\n</a>", symbols_);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos);
}

TEST_F(XmlIoTest, WriteCompact) {
  Tree t = testing_util::Xml("<a><b><c/></b><d/></a>", symbols_);
  EXPECT_EQ(WriteXml(t), "<a><b><c/></b><d/></a>");
}

TEST_F(XmlIoTest, WriteIndented) {
  Tree t = testing_util::Xml("<a><b/></a>", symbols_);
  XmlWriteOptions options;
  options.indent = 2;
  EXPECT_EQ(WriteXml(t, options), "<a>\n  <b/>\n</a>\n");
}

TEST_F(XmlIoTest, WriteSubtree) {
  Tree t = testing_util::Xml("<a><b><c/></b></a>", symbols_);
  const NodeId b = t.first_child(t.root());
  EXPECT_EQ(WriteXml(t, b), "<b><c/></b>");
}

TEST_F(XmlIoTest, RoundTripPreservesStructure) {
  const std::string doc = "<r><x><y/><z><w/></z></x><x/></r>";
  Tree t1 = testing_util::Xml(doc, symbols_);
  Tree t2 = testing_util::Xml(WriteXml(t1), symbols_);
  EXPECT_TRUE(OrderedEqual(t1, t2));
  EXPECT_EQ(WriteXml(t2), doc);
}

TEST_F(XmlIoTest, FuzzedInputNeverCrashes) {
  // The parser must reject or accept arbitrary byte soup without crashing
  // or violating tree invariants.
  Rng rng(424242);
  const char charset[] = "<>/=\"' abAB!?-[]&;\n\t";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string input;
    const size_t len = rng.NextBounded(60);
    for (size_t i = 0; i < len; ++i) {
      input += charset[rng.NextBounded(sizeof(charset) - 1)];
    }
    Result<Tree> t = ParseXml(input, symbols_);
    if (t.ok()) {
      EXPECT_TRUE(t->Validate().ok()) << "input: " << input;
    }
  }
}

TEST_F(XmlIoTest, MutatedValidDocumentsNeverCrash) {
  Rng rng(434343);
  const std::string base = "<a><b x='1'><c/></b><!--k--><d>t</d></a>";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string input = base;
    const size_t flips = 1 + rng.NextBounded(4);
    for (size_t i = 0; i < flips; ++i) {
      input[rng.NextBounded(input.size())] =
          static_cast<char>(32 + rng.NextBounded(95));
    }
    Result<Tree> t = ParseXml(input, symbols_);
    if (t.ok()) {
      EXPECT_TRUE(t->Validate().ok()) << "input: " << input;
    }
  }
}

TEST_F(XmlIoTest, DeepNestingParses) {
  std::string doc;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) doc += "<n>";
  doc += "<leaf/>";
  for (int i = 0; i < depth; ++i) doc += "</n>";
  Result<Tree> t = ParseXml(doc, symbols_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), static_cast<size_t>(depth + 1));
}

}  // namespace
}  // namespace xmlup
