#include "pattern/xpath_parser.h"

#include "gtest/gtest.h"
#include "pattern/pattern_writer.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;

class XPathParserTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  Pattern Parse(const char* s) {
    Result<Pattern> p = ParseXPath(s, symbols_);
    EXPECT_TRUE(p.ok()) << p.status();
    return std::move(p).value();
  }
};

TEST_F(XPathParserTest, SingleStep) {
  Pattern p = Parse("book");
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.LabelName(p.root()), "book");
  EXPECT_EQ(p.output(), p.root());
}

TEST_F(XPathParserTest, LeadingSlashOptional) {
  Pattern p1 = Parse("a/b");
  Pattern p2 = Parse("/a/b");
  EXPECT_EQ(ToXPathString(p1), ToXPathString(p2));
}

TEST_F(XPathParserTest, ChildAndDescendantAxes) {
  Pattern p = Parse("a/b//c");
  ASSERT_EQ(p.size(), 3u);
  const PatternNodeId b = p.first_child(p.root());
  const PatternNodeId c = p.first_child(b);
  EXPECT_EQ(p.axis(b), Axis::kChild);
  EXPECT_EQ(p.axis(c), Axis::kDescendant);
  EXPECT_EQ(p.output(), c);
  EXPECT_TRUE(p.IsLinear());
}

TEST_F(XPathParserTest, LeadingDescendantMakesWildcardRoot) {
  Pattern p = Parse("//book");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.is_wildcard(p.root()));
  const PatternNodeId book = p.first_child(p.root());
  EXPECT_EQ(p.axis(book), Axis::kDescendant);
  EXPECT_EQ(p.output(), book);
}

TEST_F(XPathParserTest, Wildcards) {
  Pattern p = Parse("*/A");
  EXPECT_TRUE(p.is_wildcard(p.root()));
  EXPECT_EQ(p.LabelName(p.output()), "A");
}

TEST_F(XPathParserTest, SimplePredicate) {
  Pattern p = Parse("a[b]");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.output(), p.root());
  const PatternNodeId b = p.first_child(p.root());
  EXPECT_EQ(p.axis(b), Axis::kChild);
  EXPECT_FALSE(p.IsLinear());
}

TEST_F(XPathParserTest, DescendantPredicate) {
  Pattern p = Parse("a[.//b]");
  const PatternNodeId b = p.first_child(p.root());
  EXPECT_EQ(p.axis(b), Axis::kDescendant);
}

TEST_F(XPathParserTest, DotSlashPredicate) {
  Pattern p = Parse("a[./b]");
  const PatternNodeId b = p.first_child(p.root());
  EXPECT_EQ(p.axis(b), Axis::kChild);
}

TEST_F(XPathParserTest, Figure2Pattern) {
  // The paper's Figure 2 example: a[.//c]/b[d][*//f].
  Pattern p = Parse("a[.//c]/b[d][*//f]");
  ASSERT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.LabelName(p.root()), "a");
  // Root has two children: the c predicate (descendant) and the trunk b.
  const std::vector<PatternNodeId> root_kids = p.Children(p.root());
  ASSERT_EQ(root_kids.size(), 2u);
  EXPECT_EQ(p.LabelName(root_kids[0]), "c");
  EXPECT_EQ(p.axis(root_kids[0]), Axis::kDescendant);
  const PatternNodeId b = root_kids[1];
  EXPECT_EQ(p.LabelName(b), "b");
  EXPECT_EQ(p.output(), b);
  // b has predicates d (child) and * (child) with f below it (descendant).
  const std::vector<PatternNodeId> b_kids = p.Children(b);
  ASSERT_EQ(b_kids.size(), 2u);
  EXPECT_EQ(p.LabelName(b_kids[0]), "d");
  EXPECT_EQ(p.LabelName(b_kids[1]), "*");
  const PatternNodeId f = p.first_child(b_kids[1]);
  EXPECT_EQ(p.LabelName(f), "f");
  EXPECT_EQ(p.axis(f), Axis::kDescendant);
}

TEST_F(XPathParserTest, NestedPredicates) {
  Pattern p = Parse("a[b[c]/d]");
  EXPECT_EQ(p.size(), 4u);
  const PatternNodeId b = p.first_child(p.root());
  const std::vector<PatternNodeId> b_kids = p.Children(b);
  ASSERT_EQ(b_kids.size(), 2u);  // c (nested predicate) and d (spine)
}

TEST_F(XPathParserTest, PredicateAfterOutput) {
  Pattern p = Parse("a/b[c]");
  EXPECT_EQ(p.LabelName(p.output()), "b");
  EXPECT_EQ(p.ChildCount(p.output()), 1u);
}

TEST_F(XPathParserTest, WhitespaceTolerated) {
  Pattern p = Parse(" a [ b ] / c ");
  EXPECT_EQ(p.size(), 3u);
}

TEST_F(XPathParserTest, ErrorCases) {
  EXPECT_FALSE(ParseXPath("", symbols_).ok());
  EXPECT_FALSE(ParseXPath("a[", symbols_).ok());
  EXPECT_FALSE(ParseXPath("a]", symbols_).ok());
  EXPECT_FALSE(ParseXPath("a//", symbols_).ok());
  EXPECT_FALSE(ParseXPath("/", symbols_).ok());
  EXPECT_FALSE(ParseXPath("a b", symbols_).ok());
  EXPECT_FALSE(ParseXPath("a[]", symbols_).ok());
  EXPECT_FALSE(ParseXPath("[a]", symbols_).ok());
}

TEST_F(XPathParserTest, MalformedInputsReturnStatusNotCrash) {
  // Hardening satellite: every malformed input must come back as a
  // ParseError Status — no assertion, no silent mis-parse.
  const char* cases[] = {
      "a/",      // trailing slash: empty final step
      "b/c/",    // trailing slash after a longer trunk
      "//",      // leading descendant with no step
      "a//",     // empty step after //
      "a///b",   // empty step between slashes
      "a[]",     // empty predicate
      "a[  ]",   // whitespace-only predicate
      "a[./]",   // predicate with dot-slash but no step
      "a[.//]",  // predicate with dot-slash-slash but no step
      "a[b/]",   // trailing slash inside predicate
      "a[b//]",  // trailing descendant inside predicate
      "a[.]",    // bare dot predicate is not in the fragment
      "   ",     // whitespace only
  };
  for (const char* xpath : cases) {
    Result<Pattern> r = ParseXPath(xpath, symbols_);
    EXPECT_FALSE(r.ok()) << "accepted malformed input: \"" << xpath << "\"";
  }
}

TEST_F(XPathParserTest, DeepPredicateNestingIsRejectedNotStackOverflow) {
  // 100k nested predicates previously recursed once per level and
  // overflowed the stack; now the parser caps nesting depth.
  std::string deep = "a";
  for (int i = 0; i < 100000; ++i) deep += "[b";
  deep.append(100000, ']');
  Result<Pattern> r = ParseXPath(deep, symbols_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nesting"), std::string::npos)
      << r.status();
}

TEST_F(XPathParserTest, ReasonableNestingStillAccepted) {
  std::string nested = "a";
  for (int i = 0; i < 64; ++i) nested += "[b";
  nested.append(64, ']');
  EXPECT_TRUE(ParseXPath(nested, symbols_).ok());
}

TEST_F(XPathParserTest, WriterRoundTrip) {
  const char* cases[] = {
      "a",           "a/b",        "a//b",           "a/b//c",
      "*",           "a[b]",       "a[.//b]",        "a[b][c]/d",
      "a[.//c]/b[d][*//f]",        "a[b[c]/d]//e",   "*//*",
  };
  for (const char* xpath : cases) {
    Pattern p = Parse(xpath);
    const std::string rendered = ToXPathString(p);
    Pattern reparsed = Parse(rendered.c_str());
    // Round trip: rendering the reparsed pattern is a fixpoint.
    EXPECT_EQ(ToXPathString(reparsed), rendered) << "input: " << xpath;
    EXPECT_EQ(reparsed.size(), p.size()) << "input: " << xpath;
  }
}

}  // namespace
}  // namespace xmlup
